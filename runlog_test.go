package mptcpsim

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// streamToLog runs the grid through Stream with a LogSink into a buffer
// and returns the raw log bytes.
func streamToLog(t *testing.T, s *Sweep, g *Grid, opt LogOptions) []byte {
	t.Helper()
	digest, total, err := s.Describe(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink, err := NewLogSink(&buf, RunLogHeader{GridDigest: digest, N: 1, Total: total}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stream(g, StreamSpec{}, sink); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLogSinkRoundTrip streams a sweep into a run-log and reads it back:
// header intact, one record per run with exactly-once index coverage, no
// torn tail, and hashes recorded when requested.
func TestLogSinkRoundTrip(t *testing.T) {
	s := &Sweep{Workers: 4}
	raw := streamToLog(t, s, sweepGrid(), LogOptions{Hash: true})

	log, err := ReadRunLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if log.Torn() {
		t.Fatalf("clean log reports torn tail at %d", log.TornTail)
	}
	if log.Header.Version != RunLogVersion || log.Header.N != 1 || log.Header.Total != 4 {
		t.Fatalf("header round-trip: %+v", log.Header)
	}
	if len(log.Runs) != 4 || len(log.Indices()) != 4 {
		t.Fatalf("log has %d records over %d indices, want 4/4", len(log.Runs), len(log.Indices()))
	}
	for _, rec := range log.Runs {
		if rec.Hash == "" {
			t.Fatalf("run %d logged without its hash", rec.Run.Index)
		}
	}
	if log.Errs() != 0 {
		t.Fatalf("log counts %d errors for a passing grid", log.Errs())
	}
}

// TestLogSinkSyncBatching counts durability barriers: one for the header,
// then one per SyncEvery records plus the final Close flush.
func TestLogSinkSyncBatching(t *testing.T) {
	syncs := 0
	s := &Sweep{Workers: 1}
	_ = streamToLog(t, s, sweepGrid(), LogOptions{
		SyncEvery: 2,
		Sync:      func() error { syncs++; return nil },
	})
	// Header barrier + records 2 and 4 + Close = 4. (Close lands on an
	// empty batch here, but it must still barrier: the final records in a
	// partial batch have to reach the disk.)
	if syncs != 4 {
		t.Fatalf("4 runs with SyncEvery=2 hit %d sync barriers, want 4", syncs)
	}
}

// TestRunLogMergesWithShardArtifacts is the mixed-format half of the merge
// contract at the library level: one shard as a JSON-round-tripped
// ShardResult, the other as a streamed run-log, merged together, must
// reproduce the unsharded sweep byte-identically in all four formats.
func TestRunLogMergesWithShardArtifacts(t *testing.T) {
	grid := sweepGrid
	s := &Sweep{Workers: 2}
	full, err := s.Run(grid())
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, full)

	sr0, err := s.RunShard(grid(), Shard{K: 0, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	var disk bytes.Buffer
	if err := sr0.WriteJSON(&disk); err != nil {
		t.Fatal(err)
	}
	sr0, err = LoadShard(&disk)
	if err != nil {
		t.Fatal(err)
	}

	digest, total, err := s.Describe(grid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink, err := NewLogSink(&buf, RunLogHeader{GridDigest: digest, K: 1, N: 2, Total: total}, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stream(grid(), StreamSpec{Shard: Shard{K: 1, N: 2}}, sink); err != nil {
		t.Fatal(err)
	}
	log, err := ReadRunLog(&buf)
	if err != nil {
		t.Fatal(err)
	}

	merged, err := MergeShards(sr0, log.ShardResult())
	if err != nil {
		t.Fatal(err)
	}
	got := renderAll(t, merged)
	for name, w := range want {
		if !bytes.Equal(got[name], w) {
			t.Errorf("mixed-format merge differs from unsharded sweep in %s", name)
		}
	}
}

// TestStreamSkipResumesExactlyOnce drives the library resume loop: stream
// half the grid, then stream again skipping the logged indices into the
// same buffer (Resume mode), and check the concatenated log covers every
// index exactly once.
func TestStreamSkipResumesExactlyOnce(t *testing.T) {
	s := &Sweep{Workers: 2}
	grid := sweepGrid()
	digest, total, err := s.Describe(grid)
	if err != nil {
		t.Fatal(err)
	}
	header := RunLogHeader{GridDigest: digest, N: 1, Total: total}

	var buf bytes.Buffer
	sink, err := NewLogSink(&buf, header, LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stream(grid, StreamSpec{Skip: func(i int) bool { return i%2 == 0 }}, sink); err != nil {
		t.Fatal(err)
	}
	log, err := ReadRunLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 2 {
		t.Fatalf("first pass logged %d of 2 odd-index runs", len(log.Runs))
	}

	skip := log.Indices()
	sink, err = NewLogSink(&buf, header, LogOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stream(grid, StreamSpec{Skip: func(i int) bool { return skip[i] }}, sink); err != nil {
		t.Fatal(err)
	}
	log, err = ReadRunLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != total || len(log.Indices()) != total {
		t.Fatalf("resumed log has %d records over %d indices, want %d each",
			len(log.Runs), len(log.Indices()), total)
	}
	if _, err := MergeShards(log.ShardResult()); err != nil {
		t.Fatalf("resumed log does not merge: %v", err)
	}
}

// TestReadRunLogTornTail pins the crash-recovery semantics: the trailing
// newline is a record's commit mark, so any truncation point inside (or at
// the end of) the final line is a resumable torn tail at the right byte
// offset — while corruption that a killed single writer cannot produce is
// a hard error.
func TestReadRunLogTornTail(t *testing.T) {
	s := &Sweep{Workers: 1}
	raw := streamToLog(t, s, sweepGrid(), LogOptions{})
	lines := bytes.SplitAfter(raw, []byte("\n"))
	lines = lines[:len(lines)-1] // drop the empty tail of SplitAfter
	if len(lines) != 5 {
		t.Fatalf("log has %d lines, want header + 4 records", len(lines))
	}
	lastStart := int64(len(raw) - len(lines[4]))

	// Every truncation point inside the final record — from one byte in to
	// one byte short of the committing newline, and even the fully parseable
	// unterminated line — is the same torn tail.
	for _, cut := range []int{1, len(lines[4]) / 2, len(lines[4]) - 1} {
		log, err := ReadRunLog(bytes.NewReader(raw[:int(lastStart)+cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !log.Torn() || log.TornTail != lastStart {
			t.Fatalf("cut %d: torn=%v tail=%d, want torn at %d", cut, log.Torn(), log.TornTail, lastStart)
		}
		if len(log.Runs) != 3 {
			t.Fatalf("cut %d: %d committed records survive, want 3", cut, len(log.Runs))
		}
	}

	// Every truncation point before the header's committing newline — the
	// empty file, any cut inside the header bytes, and the cut exactly at
	// the end of the header text — is the ErrHeaderTorn case: nothing was
	// committed, so there is nothing to resume and no tail offset to report.
	for cut := 0; cut < len(lines[0]); cut++ {
		_, err := ReadRunLog(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrHeaderTorn) {
			t.Fatalf("header cut at byte %d: err = %v, want ErrHeaderTorn", cut, err)
		}
	}

	// The cut right after the header's newline is a committed empty log:
	// clean, zero records, everything still to run.
	log, err := ReadRunLog(bytes.NewReader(raw[:len(lines[0])]))
	if err != nil || log.Torn() || len(log.Runs) != 0 {
		t.Fatalf("cut after header newline: err=%v torn=%v records=%d, want clean empty log",
			err, log != nil && log.Torn(), len(log.Runs))
	}

	// A clean log read normally.
	if log, err := ReadRunLog(bytes.NewReader(raw)); err != nil || log.Torn() {
		t.Fatalf("clean log: err=%v torn=%v", err, log.Torn())
	}
}

// TestReadRunLogRejectsCorruption enumerates the non-resumable cases.
func TestReadRunLogRejectsCorruption(t *testing.T) {
	s := &Sweep{Workers: 1}
	raw := streamToLog(t, s, sweepGrid(), LogOptions{})
	lines := bytes.SplitAfter(raw, []byte("\n"))
	lines = lines[:len(lines)-1]

	cases := []struct {
		name string
		muck func() []byte
		want string
	}{
		{"empty file", func() []byte { return nil }, "empty file"},
		{"garbage header", func() []byte {
			return append([]byte("not json\n"), bytes.Join(lines[1:], nil)...)
		}, "run-log header"},
		{"mid-file garbage line", func() []byte {
			out := bytes.Join(lines[:2], nil)
			out = append(out, []byte("{broken\n")...)
			return append(out, bytes.Join(lines[2:], nil)...)
		}, "run-log record"},
		{"duplicate index", func() []byte {
			out := append([]byte{}, raw...)
			return append(out, lines[2]...)
		}, "twice"},
		{"unknown field", func() []byte {
			out := bytes.Join(lines[:4], nil)
			return append(out, []byte(`{"run":{"index":3},"surprise":1}`+"\n")...)
		}, "surprise"},
		{"future version", func() []byte {
			h := bytes.Replace(lines[0], []byte(`"run_log":1`), []byte(`"run_log":99`), 1)
			return append(h, bytes.Join(lines[1:], nil)...)
		}, "version 99"},
	}
	for _, tc := range cases {
		_, err := ReadRunLog(bytes.NewReader(tc.muck()))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestStreamRejectsKeep pins the pointed diagnostic for the one sink
// configuration streaming cannot honour.
func TestStreamRejectsKeep(t *testing.T) {
	s := &Sweep{Keep: true}
	err := s.Stream(sweepGrid(), StreamSpec{}, &MemorySink{})
	if err == nil || !strings.Contains(err.Error(), "Keep") {
		t.Fatalf("Stream with Keep: err = %v, want a Keep diagnostic", err)
	}
}

// TestStreamPoisonsOnSinkError checks the first sink error surfaces from
// Stream while the remaining runs still drain.
func TestStreamPoisonsOnSinkError(t *testing.T) {
	s := &Sweep{Workers: 2}
	fail := &failingSink{failAt: 2}
	err := s.Stream(sweepGrid(), StreamSpec{}, fail)
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("err = %v, want the sink's own error", err)
	}
	if fail.accepts != 2 {
		t.Fatalf("sink accepted %d deliveries after erroring at 2", fail.accepts)
	}
	if !fail.closed {
		t.Fatal("Stream did not Close the sink after the error")
	}
}

type failingSink struct {
	failAt  int
	accepts int
	closed  bool
}

func (f *failingSink) Accept(done, total int, s RunSummary, full *Result) error {
	f.accepts++
	if f.accepts >= f.failAt {
		return fmt.Errorf("sink full")
	}
	return nil
}

func (f *failingSink) Flush() error { return nil }
func (f *failingSink) Close() error { f.closed = true; return nil }
