// The dynamic-events showcase: a WiFi→cellular handover. A phone holds an
// MPTCP connection over WiFi (40 Mbps) and LTE (25 Mbps); at t=2s the WiFi
// radio dies (link_down), at t=3s it comes back. The LP baseline is
// piecewise — 65 Mbps, then 25, then 65 again — and the point of the
// experiment is that the connection survives the outage, collapses onto
// the surviving path, and re-converges to the optimum of whichever epoch
// is in force. (A longer outage is also realistic but less telegenic: each
// unanswered retransmission doubles the dead subflow's RTO, so a radio
// that stays down for several seconds is only re-probed long after it
// returns — exactly the behaviour of a kernel TCP stack.)
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mptcpsim"
)

func main() {
	nw := mptcpsim.NewNetwork()
	// Access links.
	nw.AddLink("phone", "wifi-ap", 40, 3*time.Millisecond)
	nw.AddLink("phone", "lte-enb", 25, 15*time.Millisecond)
	// Backhauls to the server.
	nw.AddLink("wifi-ap", "server", 1000, 7*time.Millisecond)
	nw.AddLink("lte-enb", "server", 1000, 15*time.Millisecond)
	if err := nw.Endpoints("phone", "server"); err != nil {
		log.Fatal(err)
	}
	must(nw.AddPath("phone", "wifi-ap", "server"))
	must(nw.AddPath("phone", "lte-enb", "server"))
	if err := nw.NamePath(1, "wifi"); err != nil {
		log.Fatal(err)
	}
	if err := nw.NamePath(2, "lte"); err != nil {
		log.Fatal(err)
	}

	// The outage window: WiFi dies at 2s, recovers at 3s.
	for _, e := range []mptcpsim.Event{
		{At: 2 * time.Second, Type: mptcpsim.EventLinkDown, A: "phone", B: "wifi-ap"},
		{At: 3 * time.Second, Type: mptcpsim.EventLinkUp, A: "phone", B: "wifi-ap"},
	} {
		if err := nw.AddEvent(e); err != nil {
			log.Fatal(err)
		}
	}

	res, err := mptcpsim.Run(nw, mptcpsim.Options{
		CC: "cubic", Duration: 8 * time.Second, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := res.Chart(os.Stdout, "WiFi outage at 2s, recovery at 3s"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nPer-epoch view (gap measured against the epoch actually in force):")
	for i, ep := range res.Epochs {
		conv := "did not re-converge"
		if ep.Converged {
			conv = fmt.Sprintf("re-converged at %.2fs", ep.ConvergedAt.Seconds())
		}
		fmt.Printf("  epoch %d [%.1fs, %.1fs): optimum %.0f Mbps, carried %.1f Mbps (gap %.1f%%), %s\n",
			i+1, ep.Start.Seconds(), ep.End.Seconds(), ep.Optimum.Total,
			ep.TotalMean, ep.Gap*100, conv)
	}
	outage := res.Epochs[1]
	fmt.Printf("\nDuring the outage the connection fell back to LTE alone: "+
		"%.1f of the %.0f Mbps the surviving path allows.\n",
		outage.PathMeans[1], outage.Optimum.Total)
	fmt.Printf("Against the static %.0f Mbps optimum the same window would read as a "+
		"%.0f%% gap — the piecewise baseline is what makes the run comparable.\n",
		res.Optimum.Total, (1-outage.TotalMean/res.Optimum.Total)*100)
}

func must(_ int, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
