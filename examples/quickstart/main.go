// Quickstart: run the paper's headline experiment — MPTCP-CUBIC on the
// three overlapping paths of Fig. 1a — and print where the congestion
// controller lands relative to the LP optimum.
package main

import (
	"fmt"
	"log"
	"os"

	"mptcpsim"
)

func main() {
	res, err := mptcpsim.RunPaper(mptcpsim.Options{
		CC:   "cubic", // the Linux default the paper measures first
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The three paths share pairwise bottlenecks, so the optimum")
	fmt.Println("is a linear program, not greedy per-path filling:")
	fmt.Println()
	fmt.Print(res.Problem)
	fmt.Println()
	if err := res.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := res.Chart(os.Stdout, "MPTCP-CUBIC finding the optimum (Fig. 2a analogue)"); err != nil {
		log.Fatal(err)
	}
}
