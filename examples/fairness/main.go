// The RFC 6356 fairness question behind the paper's coupled algorithms:
// when an MPTCP connection shares a bottleneck with a regular TCP flow,
// coupled congestion control (LIA/OLIA) should not take more than a
// single TCP would ("do no harm"), while running CUBIC independently per
// subflow pushes the competing flow aside.
//
// Setup: the paper network; MPTCP uses Path 2 (default) and Path 1 — both
// cross the 40 Mbps s-v1 link — while a plain CUBIC TCP flow runs on
// Path 2 at the same time.
package main

import (
	"fmt"
	"log"
	"time"

	"mptcpsim"
)

func main() {
	const dur = 10 * time.Second
	fmt.Println("MPTCP (Paths 2+1) vs one plain TCP on Path 2; shared s-v1 = 40 Mbps")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %14s\n", "mptcp cc", "mptcp Mbps", "tcp Mbps", "mptcp/tcp")
	for _, cc := range []string{"lia", "olia", "balia", "wvegas", "cubic", "reno"} {
		res, err := mptcpsim.RunPaper(mptcpsim.Options{
			CC:           cc,
			Seed:         1,
			Duration:     dur,
			SubflowPaths: []int{2, 1},
			CrossTCP:     []int{2},
		})
		if err != nil {
			log.Fatal(err)
		}
		// Skip the first 2 s of transient.
		mptcpRate := res.Paths[0].Mean(2*time.Second, dur) + res.Paths[1].Mean(2*time.Second, dur)
		tcpRate := res.Cross[0].Mean(2*time.Second, dur)
		fmt.Printf("%-8s %12.1f %12.1f %14.2f\n", cc, mptcpRate, tcpRate, mptcpRate/tcpRate)
	}
	fmt.Println()
	fmt.Println("Coupled algorithms keep the ratio near (or below) 1 even with two")
	fmt.Println("subflows on the link; uncoupled CUBIC/Reno behave like two flows.")
}
