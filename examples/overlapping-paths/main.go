// The paper's full demo: compare how CUBIC, LIA and OLIA search for the
// optimal throughput split on the overlapping-path network.
//
// CUBIC (uncoupled, per-subflow) "shakes down" into the LP optimum within
// seconds thanks to its asynchronous sawtooth; LIA is stable but stops
// short of the optimum; OLIA converges only on a much longer horizon.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mptcpsim"
)

func main() {
	type run struct {
		cc       string
		duration time.Duration
		note     string
	}
	runs := []run{
		{"cubic", 4 * time.Second, "Fig 2a: finds the optimum, then stays noisy"},
		{"lia", 4 * time.Second, "stable but never reaches the optimum"},
		{"olia", 4 * time.Second, "Fig 2b: far from the optimum at this horizon"},
		{"olia", 25 * time.Second, "the same OLIA converges given ~15-20s"},
	}
	for _, r := range runs {
		res, err := mptcpsim.RunPaper(mptcpsim.Options{CC: r.cc, Duration: r.duration, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s over %v — %s ===\n", r.cc, r.duration, r.note)
		if err := res.Report(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		title := fmt.Sprintf("MPTCP-%s, %v", r.cc, r.duration)
		if err := res.Chart(os.Stdout, title); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("Summary: the LP optimum is 90 Mbps = {x1=30, x2=10, x3=50}.")
	fmt.Println("Greedy filling of the default path reaches only 60 Mbps; escaping")
	fmt.Println("it requires lowering Path 2's rate so Paths 1 and 3 gain 2x as much.")
}
