// The datacenter motivation the paper cites (Raiciu et al., SIGCOMM'11):
// a leaf-spine fabric offers several equal-cost paths between two racks,
// but one TCP flow hashes onto one of them. MPTCP with one subflow per
// spine uses the whole fabric.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mptcpsim"
)

const spines = 4

func buildFabric() *mptcpsim.Network {
	nw := mptcpsim.NewNetwork()
	// Hosts to top-of-rack switches, ToRs to every spine.
	nw.AddLink("hostA", "tor1", 40, 100*time.Microsecond)
	nw.AddLink("hostB", "tor2", 40, 100*time.Microsecond)
	for s := 1; s <= spines; s++ {
		spine := fmt.Sprintf("spine%d", s)
		nw.AddLink("tor1", spine, 10, 500*time.Microsecond)
		nw.AddLink(spine, "tor2", 10, 500*time.Microsecond)
	}
	if err := nw.Endpoints("hostA", "hostB"); err != nil {
		log.Fatal(err)
	}
	for s := 1; s <= spines; s++ {
		spine := fmt.Sprintf("spine%d", s)
		if _, err := nw.AddPath("hostA", "tor1", spine, "tor2", "hostB"); err != nil {
			log.Fatal(err)
		}
		if err := nw.NamePath(s, "via "+spine); err != nil {
			log.Fatal(err)
		}
	}
	return nw
}

func main() {
	// Single-path TCP: stuck on whatever path ECMP hashed the flow onto.
	single, err := mptcpsim.Run(buildFabric(), mptcpsim.Options{
		CC: "cubic", Duration: 3 * time.Second, Seed: 1,
		SubflowPaths: []int{1},
	})
	if err != nil {
		log.Fatal(err)
	}
	// MPTCP: one subflow per spine.
	multi, err := mptcpsim.Run(buildFabric(), mptcpsim.Options{
		CC: "olia", Duration: 3 * time.Second, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fabric: %d spines x 10 Mbps; LP optimum %.0f Mbps\n\n", spines, multi.Optimum.Total)
	fmt.Printf("single-path TCP (one ECMP bucket): %.1f Mbps\n", single.Summary.TotalMean)
	fmt.Printf("MPTCP, %d subflows (OLIA):          %.1f Mbps (%.1fx)\n\n",
		spines, multi.Summary.TotalMean, multi.Summary.TotalMean/single.Summary.TotalMean)
	if err := multi.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := multi.Chart(os.Stdout, "MPTCP across the fabric"); err != nil {
		log.Fatal(err)
	}
}
