// The classic MPTCP use case from the paper's introduction: a phone
// connected through Wi-Fi and cellular at once. The paths are disjoint
// (no shared bottleneck), so coupled congestion control simply aggregates
// them; a lossy Wi-Fi radio shifts traffic to cellular without stalling
// the connection.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mptcpsim"
)

func buildNetwork() *mptcpsim.Network {
	nw := mptcpsim.NewNetwork()
	// Access links.
	nw.AddLink("phone", "wifi-ap", 40, 3*time.Millisecond)
	nw.AddLink("phone", "lte-enb", 25, 15*time.Millisecond)
	// Backhauls to the server.
	nw.AddLink("wifi-ap", "server", 1000, 7*time.Millisecond)
	nw.AddLink("lte-enb", "server", 1000, 15*time.Millisecond)
	if err := nw.Endpoints("phone", "server"); err != nil {
		log.Fatal(err)
	}
	must(nw.AddPath("phone", "wifi-ap", "server"))
	must(nw.AddPath("phone", "lte-enb", "server"))
	if err := nw.NamePath(1, "wifi"); err != nil {
		log.Fatal(err)
	}
	if err := nw.NamePath(2, "lte"); err != nil {
		log.Fatal(err)
	}
	return nw
}

func main() {
	fmt.Println("=== clean radios: LIA aggregates both access links ===")
	res, err := mptcpsim.Run(buildNetwork(), mptcpsim.Options{
		CC: "lia", Duration: 6 * time.Second, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	fmt.Println("=== 2% Wi-Fi radio loss: traffic shifts to LTE ===")
	lossy := buildNetwork()
	if err := lossy.SetLoss("phone", "wifi-ap", 0.02); err != nil {
		log.Fatal(err)
	}
	res2, err := mptcpsim.Run(lossy, mptcpsim.Options{
		CC: "lia", Duration: 6 * time.Second, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(res2)

	wifiClean := res.Summary.PathMeans[0]
	wifiLossy := res2.Summary.PathMeans[0]
	fmt.Printf("Wi-Fi carried %.1f Mbps clean vs %.1f Mbps at 2%% loss;\n", wifiClean, wifiLossy)
	fmt.Printf("the connection survives at %.1f Mbps total (clean: %.1f).\n",
		res2.Summary.TotalMean, res.Summary.TotalMean)
}

func report(res *mptcpsim.Result) {
	if err := res.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := res.Chart(os.Stdout, "wifi + lte aggregation"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func must(_ int, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
