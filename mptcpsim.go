// Package mptcpsim reproduces "The Performance of Multi-Path TCP with
// Overlapping Paths" (Zongor, Heszberger, Pašić, Tapolcai; SIGCOMM Posters
// and Demos 2019) as a self-contained, deterministic packet-level
// simulation library.
//
// The paper pins an MPTCP connection onto three partially overlapping
// paths of a small network using packet tags, and asks whether the
// congestion-control algorithm can find the optimal total throughput —
// the solution of a linear program over the shared bottleneck capacities —
// rather than the suboptimal operating point greedy per-path filling
// reaches. This package rebuilds that entire experiment in Go: the
// discrete-event network, the tag-routed forwarding plane, a userspace TCP
// with SACK, the MPTCP layer with coupled congestion control (LIA, OLIA,
// BALIA) and uncoupled CUBIC/Reno, the tshark-style receiver capture at 10
// and 100 ms bins, and the LP/max-min/proportional-fair baselines.
//
// Quick start:
//
//	res, err := mptcpsim.RunPaper(mptcpsim.Options{CC: "cubic"})
//	if err != nil { ... }
//	fmt.Printf("total %.1f Mbps of optimum %.0f\n",
//		res.Summary.TotalMean, res.Optimum.Total)
//	res.Chart(os.Stdout, "Fig 2a")
//
// Custom topologies are assembled with NewNetwork / AddLink / AddPath and
// executed with Run, or described as JSON scenario files (ScenarioFile).
// Everything is stdlib-only and runs in virtual time: a 4-second
// experiment takes milliseconds of wall clock.
//
// Batch experimentation is built in: a Grid declares the cross product of
// scenarios, link perturbations, congestion-control algorithms,
// schedulers, subflow orderings and seeds, and Sweep executes it across a
// worker pool — each run an independent virtual-time simulation — then
// aggregates per-run optimality gaps against the LP baseline into a
// SweepResult:
//
//	grid := &mptcpsim.Grid{CCs: []string{"cubic", "olia"},
//		Orders: [][]int{{2, 1, 3}, {1, 2, 3}}, Seeds: []int64{1, 2, 3}}
//	sr, err := (&mptcpsim.Sweep{}).Run(grid)
//	if err != nil { ... }
//	sr.Report(os.Stdout)
//
// Sweep output is deterministic for a given grid regardless of worker
// count.
package mptcpsim

import (
	"time"
)

// Default experiment parameters, mirroring the paper's measurement setup.
const (
	// DefaultDuration matches Fig. 2a/2b (4 seconds of traffic).
	DefaultDuration = 4 * time.Second
	// DefaultSampleInterval matches the coarse tshark binning (100 ms);
	// Fig. 2c uses 10 ms.
	DefaultSampleInterval = 100 * time.Millisecond
	// ServerPort is the iperf-style destination port.
	ServerPort = 5001
)

// Options parameterises one experiment run. The zero value of every field
// selects a sensible default.
type Options struct {
	// CC is the congestion-control algorithm: "cubic" (paper default),
	// "reno", "lia", "olia", "balia", "wvegas" (delay-based coupled
	// control).
	CC string
	// Scheduler is the MPTCP segment scheduler: "minrtt" (default),
	// "roundrobin", "redundant".
	Scheduler string
	// Duration is the traffic duration (default 4 s).
	Duration time.Duration
	// SampleInterval is the capture bin width (default 100 ms).
	SampleInterval time.Duration
	// Seed drives all randomness; identical seeds reproduce identical
	// runs bit-for-bit.
	Seed int64
	// SubflowPaths lists path numbers (1-based, in AddPath order) in
	// subflow order; the first is the default path. Empty means all paths
	// in definition order. RunPaper defaults to [2, 1, 3] — Path 2 is the
	// paper's default shortest path.
	SubflowPaths []int
	// TransferBytes limits the transfer size; 0 streams for the whole
	// duration (iperf bulk).
	TransferBytes int
	// QueueScale multiplies every link's buffer (1.0 default) — the
	// paper's shake-down depends on drop timing, so this is the main
	// ablation knob.
	QueueScale float64
	// DisableSACK degrades loss recovery to classic NewReno.
	DisableSACK bool
	// Timestamps enables RFC 7323 TCP timestamps on all flows (one RTT
	// sample per ACK; SACK blocks yield option space to the timestamp).
	Timestamps bool
	// DelAckCount overrides delayed-ACK segment count (default 2).
	DelAckCount int
	// RetainPackets keeps every captured frame for pcap export (memory
	// heavy on long runs).
	RetainPackets bool
	// ConvergenceTol is the optimum band for convergence detection
	// (default 0.08 = within 8% of the LP total).
	ConvergenceTol float64
	// ConvergenceHold is how long the total must stay in the band
	// (default 500 ms).
	ConvergenceHold time.Duration
	// CrossTCP starts one competing single-path TCP bulk flow per listed
	// path number, alongside the MPTCP connection. Cross flows use CrossCC
	// and report their rates in Result.Cross — the setup of the RFC 6356
	// fairness question ("do no harm to regular TCP on a shared link").
	CrossTCP []int
	// CrossCC is the congestion control of the cross flows (default
	// "cubic").
	CrossCC string
	// ValidateInvariants attaches the correctness oracle to the run:
	// packet conservation (per link, per flow, network-wide), per-epoch
	// link-capacity budgets, FIFO arrival order, and the optimality-gap
	// sign are audited and reported in Result.Invariants. The oracle only
	// observes — a validated run is bit-identical to an unvalidated one —
	// at a few percent of CPU overhead.
	ValidateInvariants bool
	// EventLimit aborts the run with an error after this many simulation
	// events (0 = no limit). Randomized harnesses set it as a runaway
	// guard: a pathological scenario fails fast instead of spinning.
	EventLimit uint64
	// Telemetry collects engine counters (event-loop volume and peaks,
	// per-link dataplane counters, per-subflow transport/scheduler
	// activity) into Result.Telemetry and attaches a flight recorder
	// retaining the last engine events for Result.WriteFlightRecorder.
	// Like ValidateInvariants it is observation-only: a run with
	// telemetry hashes bit-identically to one without, and the telemetry
	// itself is excluded from Result.Hash. The json tag keeps it out of
	// the shard grid digest: a telemetry-enabled shard executes exactly
	// the runs of a plain one, so the two must keep merging.
	Telemetry bool `json:"-"`
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.CC == "" {
		o.CC = "cubic"
	}
	if o.Duration <= 0 {
		o.Duration = DefaultDuration
	}
	if o.SampleInterval <= 0 {
		o.SampleInterval = DefaultSampleInterval
	}
	if o.QueueScale <= 0 {
		o.QueueScale = 1
	}
	if o.ConvergenceTol <= 0 {
		o.ConvergenceTol = 0.08
	}
	if o.ConvergenceHold <= 0 {
		o.ConvergenceHold = 500 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}
