package mptcpsim_test

import (
	"fmt"
	"log"
	"time"

	"mptcpsim"
)

// ExampleRunPaper runs the paper's experiment briefly and prints the
// analytic baselines, which are exact and deterministic.
func ExampleRunPaper() {
	res, err := mptcpsim.RunPaper(mptcpsim.Options{
		CC:       "cubic",
		Duration: 200 * time.Millisecond, // the LP does not depend on the run
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP optimum: %.0f Mbps at x1=%.0f x2=%.0f x3=%.0f\n",
		res.Optimum.Total, res.Optimum.PerPath[0], res.Optimum.PerPath[1], res.Optimum.PerPath[2])
	fmt.Printf("greedy trap: %.0f Mbps\n", res.Greedy[0]+res.Greedy[1]+res.Greedy[2])
	fmt.Printf("max-min fair: %.0f Mbps\n", res.MaxMin[0]+res.MaxMin[1]+res.MaxMin[2])
	// Output:
	// LP optimum: 90 Mbps at x1=30 x2=10 x3=50
	// greedy trap: 60 Mbps
	// max-min fair: 80 Mbps
}

// ExampleNewNetwork assembles a custom two-path topology and reports its
// optimum.
func ExampleNewNetwork() {
	nw := mptcpsim.NewNetwork()
	nw.AddLink("phone", "wifi", 30, 3*time.Millisecond)
	nw.AddLink("wifi", "server", 100, 5*time.Millisecond)
	nw.AddLink("phone", "lte", 20, 15*time.Millisecond)
	nw.AddLink("lte", "server", 100, 10*time.Millisecond)
	if err := nw.Endpoints("phone", "server"); err != nil {
		log.Fatal(err)
	}
	if _, err := nw.AddPath("phone", "wifi", "server"); err != nil {
		log.Fatal(err)
	}
	if _, err := nw.AddPath("phone", "lte", "server"); err != nil {
		log.Fatal(err)
	}
	res, err := mptcpsim.Run(nw, mptcpsim.Options{CC: "lia", Duration: 200 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disjoint paths aggregate to %.0f Mbps\n", res.Optimum.Total)
	// Output:
	// disjoint paths aggregate to 50 Mbps
}
