package mptcpsim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// RunLogVersion is the current run-log schema version, carried in every
// header so readers can refuse logs from a future schema loudly.
const RunLogVersion = 1

// DefaultSyncBatch is the LogSink fsync batch size: the number of records
// between durability barriers when LogOptions.SyncEvery is unset. A crash
// loses at most this many trailing records (plus one torn one), all of
// which resume re-executes.
const DefaultSyncBatch = 32

// RunLogHeader is the first NDJSON line of a run-log: the shard-artifact
// metadata (grid digest, shard coordinates, grid total) that makes the log
// mergeable through the same validated path as ShardResult artifacts. The
// run_log field doubles as the format sniffing key — shard JSON artifacts
// have no such field, so a reader can tell the two apart from the first
// line alone.
type RunLogHeader struct {
	// Version is the run-log schema version (RunLogVersion).
	Version int `json:"run_log"`
	// GridDigest is the canonical digest of the expanded grid (see
	// ShardResult.GridDigest); logs merge with other artifacts only when
	// their digests agree.
	GridDigest string `json:"grid_digest"`
	// K and N are the shard coordinates (0/1 for a whole-grid sweep).
	K int `json:"k"`
	N int `json:"n"`
	// Total is the run count of the whole grid, not just this shard.
	Total int `json:"total"`
	// Worker and Lease are optional fleet provenance: the id of the worker
	// process that wrote the log and the lease epoch it held the shard
	// under (see internal/fleet). Purely diagnostic — resume and merge
	// compare only the digest and shard shape, so a re-leased shard's log
	// may carry a different worker/lease than the one that started it.
	Worker string `json:"worker,omitempty"`
	Lease  int    `json:"lease,omitempty"`
}

// Validate reports whether the header describes a usable run-log.
func (h RunLogHeader) Validate() error {
	if h.Version != RunLogVersion {
		return fmt.Errorf("mptcpsim: run-log version %d (this build reads %d)", h.Version, RunLogVersion)
	}
	if err := (Shard{K: h.K, N: h.N}).Validate(); err != nil {
		return err
	}
	if h.Total < 0 {
		return fmt.Errorf("mptcpsim: run-log reports negative total %d", h.Total)
	}
	return nil
}

// RunRecord is one NDJSON body line of a run-log: the canonical record of
// one completed run — the summary (which carries the global index and all
// cell labels) plus, optionally, the run's canonical Result hash.
type RunRecord struct {
	Run RunSummary `json:"run"`
	// Hash is the canonical Result hash (LogOptions.Hash; empty for failed
	// runs) — the cross-machine replay check shard artifacts carry under
	// Keep, without retaining any Result.
	Hash string `json:"hash,omitempty"`
}

// LogOptions configures a LogSink.
type LogOptions struct {
	// Hash records each successful run's canonical Result hash in its
	// record, computed as the run completes and retained nowhere else.
	Hash bool
	// Sync, when set, is invoked at every durability barrier — after each
	// SyncEvery records, on Flush and on Close. Pass (*os.File).Sync for a
	// crash-durable log; leave nil for buffers and pipes.
	Sync func() error
	// SyncEvery is the number of records between durability barriers;
	// 0 means DefaultSyncBatch.
	SyncEvery int
	// Resume suppresses the header line: the sink appends to a log whose
	// header is already on disk.
	Resume bool
}

// LogSink streams one canonical NDJSON record per completed run — the
// append-only run-log behind flat-memory mega-sweeps. Records are written
// in completion order (consumers order by index; ReadRunLog plus
// MergeShards reproduces expansion order exactly), buffered, and fsync'd
// in batches when the destination supports it. Nothing is retained per
// run, so peak memory is flat in grid size.
type LogSink struct {
	w      *bufio.Writer
	enc    *json.Encoder
	opt    LogOptions
	since  int
	closed bool
}

// NewLogSink returns a sink writing the run-log to w. Unless opt.Resume is
// set, the header line is written (and synced) immediately, so even a
// sweep killed before its first completion leaves a resumable log.
func NewLogSink(w io.Writer, h RunLogHeader, opt LogOptions) (*LogSink, error) {
	if h.Version == 0 {
		h.Version = RunLogVersion
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = DefaultSyncBatch
	}
	bw := bufio.NewWriter(w)
	s := &LogSink{w: bw, enc: json.NewEncoder(bw), opt: opt}
	if !opt.Resume {
		if err := s.enc.Encode(h); err != nil {
			return nil, err
		}
		if err := s.barrier(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *LogSink) Accept(done, total int, sum RunSummary, full *Result) error {
	if s.closed {
		// A record appended past Close would land beyond the log's commit
		// mark and silently survive into merges; refuse instead.
		return fmt.Errorf("run-log sink: %w", ErrSinkClosed)
	}
	rec := RunRecord{Run: sum}
	if s.opt.Hash && full != nil && sum.Err == "" {
		rec.Hash = full.Hash()
	}
	if err := s.enc.Encode(rec); err != nil {
		return err
	}
	s.since++
	if s.since >= s.opt.SyncEvery {
		return s.barrier()
	}
	return nil
}

// barrier flushes the buffer and, when configured, fsyncs.
func (s *LogSink) barrier() error {
	s.since = 0
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.opt.Sync != nil {
		return s.opt.Sync()
	}
	return nil
}

// Flush forces every buffered record onto the destination, through the
// fsync when one is configured.
func (s *LogSink) Flush() error {
	if s.closed {
		return fmt.Errorf("run-log sink: %w", ErrSinkClosed)
	}
	return s.barrier()
}

// Close finalises the log: a last durability barrier, after which the sink
// refuses further Accepts (and a second Close) with ErrSinkClosed. The
// underlying writer (typically a file the caller opened) stays open —
// closing it is the caller's job.
func (s *LogSink) Close() error {
	if s.closed {
		return fmt.Errorf("run-log sink: %w", ErrSinkClosed)
	}
	s.closed = true
	return s.barrier()
}

// ErrHeaderTorn reports a run-log cut before its header line was
// committed: an empty file, or header bytes with no terminating newline (a
// writer killed inside — or exactly at the end of — the header line).
// Such a file records nothing, so there is nothing to resume: callers that
// can re-execute should truncate the file and restart the shard from
// scratch; a merge must refuse it.
var ErrHeaderTorn = errors.New("run-log header torn, nothing to resume")

// RunLog is a parsed run-log: the header, every complete record, and the
// position of a torn trailing record if the log was cut mid-write.
type RunLog struct {
	Header RunLogHeader
	Runs   []RunRecord
	// TornTail is the byte offset where a torn (incomplete or
	// unterminated) final record begins, -1 when the log ends cleanly.
	// Resume truncates the file here and re-executes the torn run; a merge
	// must refuse the log until then.
	TornTail int64
}

// Torn reports whether the log ends in a torn record.
func (l *RunLog) Torn() bool { return l.TornTail >= 0 }

// Indices returns the set of run indices the log records — the resume
// skip set.
func (l *RunLog) Indices() map[int]bool {
	done := make(map[int]bool, len(l.Runs))
	for _, rec := range l.Runs {
		done[rec.Run.Index] = true
	}
	return done
}

// Errs counts failed runs in the log.
func (l *RunLog) Errs() int {
	n := 0
	for _, rec := range l.Runs {
		if rec.Run.Err != "" {
			n++
		}
	}
	return n
}

// ShardResult converts the log into the mergeable artifact form, so
// run-logs flow through the same validated merge path (digest agreement,
// exactly-once index coverage) as shard JSON artifacts — including mixed
// with them. Hashes are carried when the log recorded any.
func (l *RunLog) ShardResult() *ShardResult {
	sr := &ShardResult{
		GridDigest: l.Header.GridDigest,
		K:          l.Header.K,
		N:          l.Header.N,
		Total:      l.Header.Total,
		Runs:       make([]RunSummary, len(l.Runs)),
	}
	hashed := false
	for i, rec := range l.Runs {
		sr.Runs[i] = rec.Run
		if rec.Hash != "" {
			hashed = true
		}
	}
	if hashed {
		sr.Hashes = make([]string, len(l.Runs))
		for i, rec := range l.Runs {
			sr.Hashes[i] = rec.Hash
		}
	}
	return sr
}

// ReadRunLog parses a run-log written by LogSink. A torn trailing record —
// the final line unparseable or missing its newline, the signature of a
// killed writer — is not an error: it is reported via TornTail so resume
// can truncate and rewrite it. A cut before the header's newline (including
// the empty file) is the ErrHeaderTorn case: the log records nothing and
// resume restarts from scratch. Corruption anywhere else (a bad mid-file
// line, a duplicate index, an unknown field) is an error: an append-only
// single-writer log never produces it, so it means the file is not what
// the caller thinks it is.
func ReadRunLog(r io.Reader) (*RunLog, error) {
	br := bufio.NewReader(r)
	log := &RunLog{TornTail: -1}
	var offset int64
	line, err := br.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("mptcpsim: run-log: %w", err)
	}
	if len(bytes.TrimSpace(line)) == 0 {
		return nil, fmt.Errorf("mptcpsim: run-log: empty file: %w", ErrHeaderTorn)
	}
	if err == io.EOF {
		// Header bytes without the newline commit mark: a writer killed
		// mid-header. Not a TornTail — that offset points at a torn
		// *record* after a committed header, and here no header was
		// committed at all.
		return nil, fmt.Errorf("mptcpsim: run-log: header cut after %d bytes: %w", len(line), ErrHeaderTorn)
	}
	if uerr := unmarshalStrict(line, &log.Header); uerr != nil {
		return nil, fmt.Errorf("mptcpsim: run-log header: %w", uerr)
	}
	if verr := log.Header.Validate(); verr != nil {
		return nil, verr
	}
	offset += int64(len(line))

	seen := make(map[int]bool)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("mptcpsim: run-log: %w", err)
		}
		if len(line) == 0 && err == io.EOF {
			return log, nil
		}
		var rec RunRecord
		if uerr := unmarshalStrict(line, &rec); uerr != nil || err == io.EOF {
			// Unparseable or unterminated final line: the torn tail. An
			// unterminated line that still parses is treated as torn too —
			// the trailing newline is the record's commit mark, and
			// re-running one run is cheaper than trusting an uncommitted
			// record.
			if err == io.EOF {
				log.TornTail = offset
				return log, nil
			}
			return nil, fmt.Errorf("mptcpsim: run-log record %d: %w", len(log.Runs), uerr)
		}
		if seen[rec.Run.Index] {
			return nil, fmt.Errorf("mptcpsim: run-log records index %d twice", rec.Run.Index)
		}
		seen[rec.Run.Index] = true
		log.Runs = append(log.Runs, rec)
		offset += int64(len(line))
	}
}

// unmarshalStrict decodes one JSON value rejecting unknown fields — the
// same schema discipline LoadShard applies, so a log from a newer schema
// fails loudly instead of merging with fields silently dropped.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the value means the line is not one record.
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after record")
	}
	return nil
}
