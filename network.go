package mptcpsim

import (
	"fmt"
	"math"
	"time"

	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// Network is the public topology builder: named nodes, duplex links with
// Mbps capacities, and numbered source→destination paths that MPTCP
// subflows are pinned to by tag.
type Network struct {
	graph *topo.Graph
	paths []topo.Path
	src   topo.NodeID
	dst   topo.NodeID
	ends  bool

	// Per-directed-link overrides applied at run time.
	loss map[topo.LinkID]float64

	// events are the scheduled dynamic events, in insertion order (the
	// timeline stable-sorts them by firing time at run time).
	events []Event

	pathNames []string
}

// NewNetwork returns an empty topology.
func NewNetwork() *Network {
	return &Network{graph: topo.New(), loss: make(map[topo.LinkID]float64)}
}

// AddLink adds a duplex link between the named nodes (created on first
// use) with the given capacity in Mbps and one-way propagation delay.
func (n *Network) AddLink(a, b string, mbps float64, delay time.Duration) *Network {
	na, nb := n.graph.AddNode(a), n.graph.AddNode(b)
	// Round, don't truncate: truncation makes scenario emit->build cycles
	// drift non-representable capacities down by 1 bit/s per round trip.
	n.graph.AddDuplex(na, nb, unit.Rate(math.Round(mbps*float64(unit.Mbps))), delay, 0)
	return n
}

// SetQueue overrides the buffer size (bytes) of both directions of the
// a-b link (0 restores the automatic sizing).
func (n *Network) SetQueue(a, b string, bytes int) error {
	ids, err := n.duplexIDs(a, b)
	if err != nil {
		return err
	}
	for _, id := range ids {
		l := n.graph.Links()[id]
		l.Queue = unit.ByteSize(bytes)
		n.graph.Links()[id] = l
	}
	return nil
}

// SetLoss sets an independent random packet-loss probability on both
// directions of the a-b link (a lossy wireless hop).
func (n *Network) SetLoss(a, b string, prob float64) error {
	if prob < 0 || prob > 1 {
		return fmt.Errorf("mptcpsim: loss probability %v out of range", prob)
	}
	ids, err := n.duplexIDs(a, b)
	if err != nil {
		return err
	}
	for _, id := range ids {
		n.loss[id] = prob
	}
	return nil
}

func (n *Network) duplexIDs(a, b string) ([]topo.LinkID, error) {
	na, ok := n.graph.NodeByName(a)
	if !ok {
		return nil, fmt.Errorf("mptcpsim: unknown node %q", a)
	}
	nb, ok := n.graph.NodeByName(b)
	if !ok {
		return nil, fmt.Errorf("mptcpsim: unknown node %q", b)
	}
	ab, ok := n.graph.FindLink(na, nb)
	if !ok {
		return nil, fmt.Errorf("mptcpsim: no link %s-%s", a, b)
	}
	ba, ok := n.graph.FindLink(nb, na)
	if !ok {
		return nil, fmt.Errorf("mptcpsim: no reverse link %s-%s", b, a)
	}
	return []topo.LinkID{ab, ba}, nil
}

// Endpoints declares the traffic source and destination hosts.
func (n *Network) Endpoints(src, dst string) error {
	s, ok := n.graph.NodeByName(src)
	if !ok {
		return fmt.Errorf("mptcpsim: unknown node %q", src)
	}
	d, ok := n.graph.NodeByName(dst)
	if !ok {
		return fmt.Errorf("mptcpsim: unknown node %q", dst)
	}
	n.src, n.dst, n.ends = s, d, true
	return nil
}

// AddPath declares a forwarding path through the named nodes (which must
// be joined by existing links, starting at the source and ending at the
// destination). It returns the 1-based path number used as the packet tag.
func (n *Network) AddPath(nodes ...string) (int, error) {
	if len(nodes) < 2 {
		return 0, fmt.Errorf("mptcpsim: path needs at least two nodes")
	}
	p := topo.Path{}
	for i, name := range nodes {
		id, ok := n.graph.NodeByName(name)
		if !ok {
			return 0, fmt.Errorf("mptcpsim: unknown node %q", name)
		}
		p.Nodes = append(p.Nodes, id)
		if i > 0 {
			lid, ok := n.graph.FindLink(p.Nodes[i-1], id)
			if !ok {
				return 0, fmt.Errorf("mptcpsim: no link %s-%s", nodes[i-1], name)
			}
			p.Links = append(p.Links, lid)
		}
	}
	if _, err := topo.ReversePath(n.graph, p); err != nil {
		return 0, fmt.Errorf("mptcpsim: path not reversible (ACKs need return links): %w", err)
	}
	n.paths = append(n.paths, p)
	n.pathNames = append(n.pathNames, fmt.Sprintf("Path %d", len(n.paths)))
	return len(n.paths), nil
}

// NamePath overrides the display name of a path ("wifi", "lte").
func (n *Network) NamePath(path int, name string) error {
	if path < 1 || path > len(n.paths) {
		return fmt.Errorf("mptcpsim: no path %d", path)
	}
	n.pathNames[path-1] = name
	return nil
}

// NumPaths returns the number of declared paths.
func (n *Network) NumPaths() int { return len(n.paths) }

// PathDescription renders a path as "s -> v1 -> ... -> d".
func (n *Network) PathDescription(path int) string {
	if path < 1 || path > len(n.paths) {
		return ""
	}
	return n.paths[path-1].Format(n.graph)
}

// validateMagnitudes enforces the link magnitude bounds at the common
// layer, so a network built through the API obeys the same contract as
// one parsed from a scenario file — in particular, every network that
// runs can also be exported and re-built from its own Scenario().
func (n *Network) validateMagnitudes() error {
	for _, l := range n.graph.Links() {
		a, b := n.graph.Node(l.From).Name, n.graph.Node(l.To).Name
		if l.Rate < 1 || l.Rate.Mbit() > maxLinkMbps {
			return fmt.Errorf("mptcpsim: link %s-%s: rate %v outside [1bps, %gMbps]",
				a, b, l.Rate, float64(maxLinkMbps))
		}
		if float64(l.Delay)/float64(time.Millisecond) > maxLinkDelayMs {
			return fmt.Errorf("mptcpsim: link %s-%s: delay %v above %gms",
				a, b, l.Delay, float64(maxLinkDelayMs))
		}
	}
	return nil
}

// validate checks the network is runnable.
func (n *Network) validate() error {
	if err := n.graph.Validate(); err != nil {
		return err
	}
	if err := n.validateMagnitudes(); err != nil {
		return err
	}
	if !n.ends {
		return fmt.Errorf("mptcpsim: call Endpoints before running")
	}
	if len(n.paths) == 0 {
		return fmt.Errorf("mptcpsim: no paths declared")
	}
	for i, p := range n.paths {
		if p.Nodes[0] != n.src || p.Nodes[len(p.Nodes)-1] != n.dst {
			return fmt.Errorf("mptcpsim: path %d does not connect the endpoints", i+1)
		}
	}
	return nil
}

// PaperNetwork builds the network of the paper's Fig. 1a with its three
// overlapping paths (Path 2 is the shortest-RTT default):
//
//	x1+x2 <= 40 (s-v1),  x2+x3 <= 60 (v3-v4),  x1+x3 <= 80 (v2-v3)
//
// LP optimum: 90 Mbps at {x1=30, x2=10, x3=50}.
func PaperNetwork() *Network {
	pn := topo.Paper()
	n := &Network{graph: pn.Graph, loss: make(map[topo.LinkID]float64)}
	n.src, n.dst, n.ends = pn.S, pn.D, true
	n.paths = pn.Paths
	n.pathNames = []string{"Path 1", "Path 2", "Path 3"}
	return n
}
