package mptcpsim

import (
	"fmt"
	"sort"
	"time"

	"mptcpsim/internal/capture"
	"mptcpsim/internal/cc"
	"mptcpsim/internal/check"
	"mptcpsim/internal/lp"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/tcp"
	"mptcpsim/internal/telemetry"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/trace"
	"mptcpsim/internal/unit"
	"mptcpsim/internal/workload"
)

// ResetBaselineCache drops the memoised LP/max-min/proportional-fair
// baselines. The cache is keyed by topology (and, for dynamic runs, by
// capacity epoch) and LRU-bounded at lp.DefaultBaselineCacheCap entries,
// so resetting is rarely necessary; it exists for embedders that want a
// cold start between batches.
func ResetBaselineCache() { lp.ResetBaselineCache() }

// SetBaselineCacheCap changes the baseline cache bound (entries; n <= 0
// restores the default). Dynamic-event sweeps create one cache entry per
// distinct capacity epoch per topology — raise the cap if such a sweep
// thrashes, lower it to shrink a memory-constrained embedder.
func SetBaselineCacheCap(n int) { lp.SetBaselineCacheCap(n) }

// RunPaper executes the paper's experiment on the Fig. 1a network with
// Path 2 as the default subflow (unless opts.SubflowPaths overrides it).
func RunPaper(opts Options) (*Result, error) {
	if len(opts.SubflowPaths) == 0 {
		opts.SubflowPaths = []int{2, 1, 3}
	}
	return Run(PaperNetwork(), opts)
}

// Run executes one experiment on the given network and returns the
// measured series, the analytic baselines and the run summary.
func Run(nw *Network, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := nw.validate(); err != nil {
		return nil, err
	}
	order := opts.SubflowPaths
	if len(order) == 0 {
		order = make([]int, nw.NumPaths())
		for i := range order {
			order[i] = i + 1
		}
	}
	seen := make(map[int]bool, len(order))
	for _, p := range order {
		if p < 1 || p > nw.NumPaths() {
			return nil, fmt.Errorf("mptcpsim: SubflowPaths references path %d of %d", p, nw.NumPaths())
		}
		// A repeated path would open two subflows with the same tag and
		// corrupt the greedy baseline.
		if seen[p] {
			return nil, fmt.Errorf("mptcpsim: SubflowPaths lists path %d twice", p)
		}
		seen[p] = true
	}

	// The dynamic-event timeline (nil for static networks). Validation is
	// exhaustive and happens before any simulation work.
	tl, err := nw.timeline()
	if err != nil {
		return nil, err
	}

	// Analytic baselines, memoised per topology: a sweep re-runs the same
	// network under many option combinations, and the LP / max-min /
	// proportional-fair solves depend only on the capacity structure.
	res := &Result{}
	base, err := lp.CachedBaselines(nw.graph, nw.paths)
	if err != nil {
		return nil, fmt.Errorf("mptcpsim: LP: %w", err)
	}
	res.Optimum = Allocation{PerPath: base.Solution.X, Total: base.Solution.Objective}
	res.Problem = base.ProblemString
	res.MaxMin = base.MaxMin
	res.PropFair = base.PropFair
	zeroBased := make([]int, len(order))
	for i, p := range order {
		zeroBased[i] = p - 1
	}
	res.Greedy = lp.GreedySequential(nw.graph, nw.paths, zeroBased)

	// Piecewise baselines: one LP per capacity epoch (each cached). For a
	// static network this is exactly one epoch sharing the cache slot of
	// the baseline solve above.
	epochStarts := tl.EpochStarts(opts.Duration)
	epochBase := make([]*lp.Baselines, len(epochStarts))
	for i, st := range epochStarts {
		eb, err := lp.CachedBaselinesCaps(nw.graph, nw.paths, tl.CapsAt(st, nw.graph))
		if err != nil {
			return nil, fmt.Errorf("mptcpsim: epoch LP at %v: %w", st, err)
		}
		epochBase[i] = eb
	}
	// The optimality target: the epoch optimum, time-weighted over the
	// measurement window (the run minus the slow-start transient). For a
	// single epoch this is that epoch's optimum, bit for bit. The window
	// is the binned one the measured mean actually covers — whole capture
	// bins from the (bin-aligned) end of the transient to the last full
	// bin — so measured and target integrate over the same interval and
	// the gap invariant (measured ≤ target + drain) is meaningful.
	target := epochBase[0].Solution.Objective
	if len(epochStarts) > 1 {
		measureFrom, horizon := stats.MeasureWindow(opts.Duration, opts.SampleInterval)
		var acc float64
		for i, st := range epochStarts {
			en := horizon
			if i+1 < len(epochStarts) && epochStarts[i+1] < en {
				en = epochStarts[i+1]
			}
			if st < measureFrom {
				st = measureFrom
			}
			if st < en {
				acc += epochBase[i].Solution.Objective * float64(en-st)
			}
		}
		if horizon > measureFrom {
			target = acc / float64(horizon-measureFrom)
		}
	}

	// Scale queues in place for this run, restoring the original values
	// afterwards so a Network can be reused across runs with different
	// options (including explicit SetQueue settings).
	g := nw.graph
	if opts.QueueScale != 1 {
		orig := make([]unit.ByteSize, g.NumLinks())
		for i, l := range g.Links() {
			orig[i] = l.Queue
			q := l.Queue
			if q <= 0 {
				q = l.Rate.Bytes(netem.DefaultQueueTime)
				if q < netem.MinQueue {
					q = netem.MinQueue
				}
			}
			l.Queue = unit.ByteSize(float64(q) * opts.QueueScale)
			if l.Queue < 2*1500 {
				l.Queue = 2 * 1500
			}
			g.Links()[i] = l
		}
		defer func() {
			for i, l := range g.Links() {
				l.Queue = orig[i]
				g.Links()[i] = l
			}
		}()
	}

	// Engine.
	loop := sim.NewLoop()
	if opts.EventLimit > 0 {
		loop.SetEventLimit(opts.EventLimit)
	}
	rng := sim.NewRand(opts.Seed)
	table := route.NewTagTable(g)
	net, err := netem.New(loop, g, table)
	if err != nil {
		return nil, err
	}
	// The invariant oracle attaches first so it observes every packet of
	// the run. It only watches tap points — it schedules nothing and
	// consumes no randomness — so a validated run stays bit-identical to
	// an unvalidated one.
	var oracle *check.Oracle
	if opts.ValidateInvariants {
		oracle = check.NewOracle(net, check.BuildEpochs(g, epochStarts, opts.Duration,
			func(st time.Duration) map[topo.LinkID]float64 { return tl.CapsAt(st, g) }))
	}
	// The flight recorder is another pure observer: a preallocated ring of
	// the last engine events, dumped when the run fails. Attaching it
	// changes no scheduling and consumes no randomness.
	if opts.Telemetry {
		res.flight = telemetry.NewRecorder(telemetry.DefaultRingSize)
		res.flight.Attach(net)
	}
	// Sorted iteration: ranging over the map directly would hand out
	// rng.Fork() streams in random order, making runs with several lossy
	// links irreproducible.
	lossLinks := make([]topo.LinkID, 0, len(nw.loss))
	for lid := range nw.loss {
		lossLinks = append(lossLinks, lid)
	}
	sort.Slice(lossLinks, func(a, b int) bool { return lossLinks[a] < lossLinks[b] })
	for _, lid := range lossLinks {
		net.Link(lid).SetLoss(nw.loss[lid], rng.Fork())
	}

	// Per-run micro-jitter: real testbeds never repeat exactly (interrupt
	// timing, scheduler noise), and the paper's run-to-run differences
	// ("OLIA reached the optimum in many measurements") depend on it. A
	// seeded sub-RTT perturbation of link latencies reproduces that
	// variability deterministically per seed.
	jr := rng.Fork()
	for _, l := range net.Links() {
		l.Spec.Delay += time.Duration(jr.Int63n(int64(80 * time.Microsecond)))
	}

	sender := tcp.NewHost(net, nw.src, rng.Fork())
	receiver := tcp.NewHost(net, nw.dst, rng.Fork())

	// Install forward and reverse tag routes for every path.
	for i, p := range nw.paths {
		tag := packet.Tag(i + 1)
		if err := table.AddPath(receiver.Addr, tag, p); err != nil {
			return nil, err
		}
		rev, err := topo.ReversePath(g, p)
		if err != nil {
			return nil, err
		}
		if err := table.AddPath(sender.Addr, tag, rev); err != nil {
			return nil, err
		}
	}

	// Receiver side: MPTCP acceptor plus the tshark-style capture.
	acc := &mptcp.Acceptor{}
	if err := mptcp.Listen(receiver, ServerPort, tcp.Config{
		DelAckCount: opts.DelAckCount,
		DisableSACK: opts.DisableSACK,
		Timestamps:  opts.Timestamps,
	}, acc); err != nil {
		return nil, err
	}
	sniff := capture.NewSniffer(net, nw.dst, opts.SampleInterval)
	sniff.DataOnly = true
	sniff.Retain = opts.RetainPackets

	// Competing single-path TCP flows (fairness experiments). Each gets a
	// private tag aliased to its path so the capture can separate it from
	// the MPTCP subflows.
	const crossTagBase = 100
	if len(opts.CrossTCP) > 0 {
		crossCC := opts.CrossCC
		if crossCC == "" {
			crossCC = "cubic"
		}
		if err := receiver.Listen(ServerPort+1, &tcp.Listener{
			ConfigFor: func([]packet.Option, packet.Endpoint) tcp.Config {
				return tcp.Config{Sink: &tcp.CountSink{}, DisableSACK: opts.DisableSACK}
			},
		}); err != nil {
			return nil, err
		}
		for i, pnum := range opts.CrossTCP {
			if pnum < 1 || pnum > nw.NumPaths() {
				return nil, fmt.Errorf("mptcpsim: CrossTCP references path %d of %d", pnum, nw.NumPaths())
			}
			tag := packet.Tag(crossTagBase + i)
			p := nw.paths[pnum-1]
			if err := table.AddPath(receiver.Addr, tag, p); err != nil {
				return nil, err
			}
			rev, err := topo.ReversePath(g, p)
			if err != nil {
				return nil, err
			}
			if err := table.AddPath(sender.Addr, tag, rev); err != nil {
				return nil, err
			}
			algo, err := cc.New(crossCC)
			if err != nil {
				return nil, err
			}
			if _, err := sender.Dial(tcp.Config{
				Tag:         tag,
				CC:          algo,
				Source:      tcp.BulkSource{},
				DisableSACK: opts.DisableSACK,
				FlowID:      fmt.Sprintf("tcp-%d", i+1),
			}, receiver.Addr, ServerPort+1); err != nil {
				return nil, err
			}
		}
	}

	// Sender side: one subflow per requested path, in priority order.
	specs := make([]mptcp.SubflowSpec, len(order))
	for i, pnum := range order {
		delay := time.Duration(i) * time.Millisecond
		if i > 0 {
			// Additional subflows join with a little scheduling noise, like
			// a path manager racing the first handshake.
			delay += time.Duration(jr.Int63n(int64(2 * time.Millisecond)))
		}
		specs[i] = mptcp.SubflowSpec{
			Tag:        packet.Tag(pnum),
			Label:      nw.pathNames[pnum-1],
			StartDelay: delay,
		}
	}
	var src mptcp.DataSource
	var fixed *workload.Fixed
	if opts.TransferBytes > 0 {
		fixed = &workload.Fixed{Total: opts.TransferBytes}
		src = fixed
	}
	conn, err := mptcp.Dial(sender, rng.Fork(), mptcp.Config{
		Algorithm: opts.CC,
		Scheduler: opts.Scheduler,
		Subflows:  specs,
		Source:    src,
		TCP: tcp.Config{
			DelAckCount: opts.DelAckCount,
			DisableSACK: opts.DisableSACK,
			Timestamps:  opts.Timestamps,
		},
	}, receiver.Addr, ServerPort)
	if err != nil {
		return nil, err
	}

	// Install the event timeline last: its RNG fork comes after every
	// static component's, so static runs consume exactly the streams they
	// always did and stay bit-identical.
	if tl.Len() > 0 {
		evRng := rng.Fork()
		tl.Schedule(loop, net, evRng.Fork)
	}

	if err := loop.RunUntil(sim.Time(opts.Duration)); err != nil {
		// A mid-run abort (event limit) still returns the partial result
		// alongside the error when telemetry is on, so callers can dump
		// the flight-recorder tail that led up to the failure.
		if res.flight != nil {
			return res, err
		}
		return nil, err
	}
	res.LoopEvents = loop.Processed()

	// Collect per-path series in path order (not subflow order).
	pathSeries := make([]*trace.Series, nw.NumPaths())
	for i := range nw.paths {
		pathSeries[i] = sniff.Series(packet.Tag(i+1), nw.pathNames[i], opts.Duration)
	}
	total, err := trace.Sum("Total", pathSeries...)
	if err != nil {
		return nil, err
	}
	greedyTotal := 0.0
	for _, v := range res.Greedy {
		greedyTotal += v
	}
	res.Summary = stats.Summarize(opts.CC, total, pathSeries,
		target, greedyTotal, opts.ConvergenceTol, opts.ConvergenceHold)

	// Per-epoch reports: the measured performance of each capacity epoch
	// against the optimum that was actually in force.
	res.Epochs = make([]EpochReport, len(epochStarts))
	for i, st := range epochStarts {
		en := opts.Duration
		if i+1 < len(epochStarts) {
			en = epochStarts[i+1]
		}
		es := stats.SummarizeEpoch(total, pathSeries, st, en,
			epochBase[i].Solution.Objective, opts.ConvergenceTol, opts.ConvergenceHold)
		res.Epochs[i] = EpochReport{
			Start: st,
			End:   en,
			Optimum: Allocation{
				PerPath: epochBase[i].Solution.X,
				Total:   epochBase[i].Solution.Objective,
			},
			TotalMean:   es.TotalMean,
			Gap:         es.Gap,
			PathMeans:   es.PathMeans,
			Converged:   es.Converged,
			ConvergedAt: es.ConvergedAt,
		}
	}
	// For dynamic runs the time-weighted target is right for the gap but
	// meaningless as a convergence band (no real epoch has it, so a
	// pre-outage plateau could sit in it forever). Convergence of a
	// dynamic run means settling into the band of the topology that is
	// actually in force at the end: the final epoch's.
	if len(res.Epochs) > 1 {
		last := res.Epochs[len(res.Epochs)-1]
		res.Summary.Converged = last.Converged
		res.Summary.ConvergedAt = last.ConvergedAt
	}
	for _, d := range tl.Events() {
		res.Events = append(res.Events, fromInternal(d))
	}
	for i, pnum := range opts.CrossTCP {
		s := sniff.Series(packet.Tag(crossTagBase+i),
			fmt.Sprintf("TCP on %s", nw.pathNames[pnum-1]), opts.Duration)
		res.Cross = append(res.Cross, fromTrace(s))
	}
	res.Paths = make([]Series, len(pathSeries))
	for i, s := range pathSeries {
		res.Paths[i] = fromTrace(s)
	}
	res.Total = fromTrace(total)
	res.Options = opts

	// Subflow and link accounting.
	for _, sf := range conn.Subflows() {
		r := SubflowReport{Path: int(sf.Spec.Tag), Label: sf.Spec.Label}
		if sf.TCP != nil {
			st := sf.TCP.Stats
			r.SentSegments = st.SentSegments
			r.SentBytes = st.SentBytes
			r.Retransmits = st.Retransmits
			r.RTOs = st.RTOs
			r.FastRecoveries = st.FastRecovery
			r.SRTT = sf.TCP.SRTT()
			r.FinalCwndBytes = int(sf.TCP.CwndBytes())
		}
		res.Subflows = append(res.Subflows, r)
	}
	res.Drops = make(map[string]uint64)
	res.Utilisation = make(map[string]float64)
	for _, l := range net.Links() {
		var d uint64
		for _, v := range l.Counters.Drops {
			d += v
		}
		if d > 0 {
			res.Drops[l.Name()] += d
		}
		if u := l.Utilisation(); u >= 0.05 {
			res.Utilisation[l.Name()] = u
		}
	}
	res.Packets = sniff.Packets()
	for _, rc := range acc.Conns() {
		res.DeliveredBytes += rc.Delivered
		res.DuplicateBytes += rc.DupBytes
	}
	if fixed != nil {
		res.TransferComplete = fixed.Done() && res.DeliveredBytes >= uint64(opts.TransferBytes)
	}
	if opts.RetainPackets {
		res.records = sniff.Records()
	}
	if opts.Telemetry {
		snap := &telemetry.Snapshot{
			Sim:          telemetry.FromSim(loop.Counters()),
			FlightEvents: res.flight.Len(),
			FlightTotal:  res.flight.Total(),
		}
		for _, l := range net.Links() {
			lc := telemetry.LinkCounters{
				Name:          l.Name(),
				Offered:       l.Counters.Offered,
				TxPackets:     l.Counters.TxPackets,
				TxBytes:       l.Counters.TxBytes,
				MaxQueueBytes: int(l.Counters.MaxQueue),
				Utilisation:   l.Utilisation(),
			}
			if len(l.Counters.Drops) > 0 {
				lc.Drops = make(map[string]uint64, len(l.Counters.Drops))
				for reason, n := range l.Counters.Drops {
					lc.Drops[reason.String()] = n
				}
			}
			snap.Links = append(snap.Links, lc)
		}
		for _, sf := range conn.Subflows() {
			sc := telemetry.SubflowCounters{
				Path:       int(sf.Spec.Tag),
				Label:      sf.Spec.Label,
				SchedPicks: sf.Picks,
			}
			if sf.TCP != nil {
				sc.RTOs = sf.TCP.Stats.RTOs
				sc.FastRecoveries = sf.TCP.Stats.FastRecovery
				sc.Retransmits = sf.TCP.Stats.Retransmits
				sc.CwndPeakBytes = int(sf.TCP.CwndPeak)
			}
			snap.Subflows = append(snap.Subflows, sc)
		}
		res.Telemetry = snap
	}
	if oracle != nil {
		v := oracle.Violations()
		v = append(v, gapInvariants(res, drainSlackBytes(net))...)
		v = append(v, dataInvariants(conn, acc)...)
		res.Invariants = v
	}
	return res, nil
}
