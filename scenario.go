package mptcpsim

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ScenarioFile is the on-disk JSON description of a topology, so the CLI
// can run arbitrary networks without recompiling:
//
//	{
//	  "links": [
//	    {"a": "s",  "b": "v1", "mbps": 40,  "delay_ms": 1},
//	    {"a": "v1", "b": "v2", "mbps": 100, "delay_ms": 2, "queue_bytes": 65536},
//	    {"a": "s",  "b": "w",  "mbps": 30,  "delay_ms": 3, "loss": 0.01}
//	  ],
//	  "endpoints": {"src": "s", "dst": "d"},
//	  "paths": [
//	    {"nodes": ["s", "v1", "v2", "d"], "name": "upper"},
//	    {"nodes": ["s", "w", "d"]}
//	  ]
//	}
//
// Nodes are created implicitly by the links that mention them. Paths are
// numbered 1..n in file order (the numbers SubflowPaths/CrossTCP use).
type ScenarioFile struct {
	Links     []ScenarioLink `json:"links"`
	Endpoints struct {
		Src string `json:"src"`
		Dst string `json:"dst"`
	} `json:"endpoints"`
	Paths []ScenarioPath `json:"paths"`
}

// ScenarioLink is one duplex link of a scenario file.
type ScenarioLink struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Mbps       float64 `json:"mbps"`
	DelayMs    float64 `json:"delay_ms"`
	QueueBytes int     `json:"queue_bytes,omitempty"`
	Loss       float64 `json:"loss,omitempty"`
}

// ScenarioPath is one declared path of a scenario file.
type ScenarioPath struct {
	Nodes []string `json:"nodes"`
	Name  string   `json:"name,omitempty"`
}

// LoadNetwork parses a scenario file into a runnable Network.
func LoadNetwork(r io.Reader) (*Network, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sf ScenarioFile
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("mptcpsim: scenario: %w", err)
	}
	return sf.Build()
}

// Build assembles the Network described by the file.
func (sf *ScenarioFile) Build() (*Network, error) {
	if len(sf.Links) == 0 {
		return nil, fmt.Errorf("mptcpsim: scenario has no links")
	}
	nw := NewNetwork()
	for i, l := range sf.Links {
		if l.A == "" || l.B == "" {
			return nil, fmt.Errorf("mptcpsim: link %d missing endpoint names", i)
		}
		if l.Mbps <= 0 {
			return nil, fmt.Errorf("mptcpsim: link %d (%s-%s) needs mbps > 0", i, l.A, l.B)
		}
		if l.DelayMs < 0 {
			return nil, fmt.Errorf("mptcpsim: link %d (%s-%s) has negative delay", i, l.A, l.B)
		}
		nw.AddLink(l.A, l.B, l.Mbps, time.Duration(l.DelayMs*float64(time.Millisecond)))
		if l.QueueBytes > 0 {
			if err := nw.SetQueue(l.A, l.B, l.QueueBytes); err != nil {
				return nil, err
			}
		}
		if l.Loss > 0 {
			if err := nw.SetLoss(l.A, l.B, l.Loss); err != nil {
				return nil, err
			}
		}
	}
	if sf.Endpoints.Src == "" || sf.Endpoints.Dst == "" {
		return nil, fmt.Errorf("mptcpsim: scenario missing endpoints")
	}
	if err := nw.Endpoints(sf.Endpoints.Src, sf.Endpoints.Dst); err != nil {
		return nil, err
	}
	if len(sf.Paths) == 0 {
		return nil, fmt.Errorf("mptcpsim: scenario declares no paths")
	}
	for i, p := range sf.Paths {
		num, err := nw.AddPath(p.Nodes...)
		if err != nil {
			return nil, fmt.Errorf("mptcpsim: path %d: %w", i+1, err)
		}
		if p.Name != "" {
			if err := nw.NamePath(num, p.Name); err != nil {
				return nil, err
			}
		}
	}
	return nw, nil
}

// PaperScenario returns the paper network as a scenario file, both as
// documentation of the format and for -topo round-trips.
func PaperScenario() *ScenarioFile {
	sf := &ScenarioFile{
		Links: []ScenarioLink{
			{A: "s", B: "v1", Mbps: 40, DelayMs: 1},
			{A: "v1", B: "v2", Mbps: 100, DelayMs: 2},
			{A: "v2", B: "v3", Mbps: 80, DelayMs: 2},
			{A: "v3", B: "d", Mbps: 100, DelayMs: 4},
			{A: "v1", B: "v3", Mbps: 100, DelayMs: 1},
			{A: "v3", B: "v4", Mbps: 60, DelayMs: 1},
			{A: "v4", B: "d", Mbps: 100, DelayMs: 1},
			{A: "s", B: "v2", Mbps: 100, DelayMs: 3},
		},
		Paths: []ScenarioPath{
			{Nodes: []string{"s", "v1", "v2", "v3", "d"}, Name: "Path 1"},
			{Nodes: []string{"s", "v1", "v3", "v4", "d"}, Name: "Path 2"},
			{Nodes: []string{"s", "v2", "v3", "v4", "d"}, Name: "Path 3"},
		},
	}
	sf.Endpoints.Src = "s"
	sf.Endpoints.Dst = "d"
	return sf
}
