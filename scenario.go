package mptcpsim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"mptcpsim/internal/topo"
)

// ScenarioFile is the on-disk JSON description of a topology, so the CLI
// can run arbitrary networks without recompiling:
//
//	{
//	  "links": [
//	    {"a": "s",  "b": "v1", "mbps": 40,  "delay_ms": 1},
//	    {"a": "v1", "b": "v2", "mbps": 100, "delay_ms": 2, "queue_bytes": 65536},
//	    {"a": "s",  "b": "w",  "mbps": 30,  "delay_ms": 3, "loss": 0.01}
//	  ],
//	  "endpoints": {"src": "s", "dst": "d"},
//	  "paths": [
//	    {"nodes": ["s", "v1", "v2", "d"], "name": "upper"},
//	    {"nodes": ["s", "w", "d"]}
//	  ]
//	}
//
// Nodes are created implicitly by the links that mention them. Paths are
// numbered 1..n in file order (the numbers SubflowPaths/CrossTCP use).
type ScenarioFile struct {
	Links     []ScenarioLink `json:"links"`
	Endpoints struct {
		Src string `json:"src"`
		Dst string `json:"dst"`
	} `json:"endpoints"`
	Paths []ScenarioPath `json:"paths"`
	// Events optionally make the scenario dynamic: scheduled link changes
	// applied at virtual times during the run (see Event):
	//
	//	"events": [
	//	  {"at_ms": 2000, "type": "link_down", "a": "s", "b": "v1"},
	//	  {"at_ms": 3500, "type": "link_up",   "a": "s", "b": "v1"},
	//	  {"at_ms": 1000, "type": "set_rate",  "a": "v3", "b": "v4", "mbps": 20},
	//	  {"at_ms": 500,  "type": "loss_burst","a": "s", "b": "v1", "loss": 0.3, "duration_ms": 200}
	//	]
	Events []ScenarioEvent `json:"events,omitempty"`
}

// Magnitude bounds on scenario links: 1 Tbps and one hour of one-way
// delay. See the validation in Build for why they exist.
const (
	maxLinkMbps    = 1e6
	maxLinkDelayMs = 3.6e6
)

// ScenarioLink is one duplex link of a scenario file.
type ScenarioLink struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Mbps       float64 `json:"mbps"`
	DelayMs    float64 `json:"delay_ms"`
	QueueBytes int     `json:"queue_bytes,omitempty"`
	Loss       float64 `json:"loss,omitempty"`
}

// ScenarioPath is one declared path of a scenario file.
type ScenarioPath struct {
	Nodes []string `json:"nodes"`
	Name  string   `json:"name,omitempty"`
}

// ScenarioEvent is one dynamic event of a scenario file. Type takes the
// Event* spellings; only the parameter matching the type is read.
type ScenarioEvent struct {
	AtMs float64 `json:"at_ms"`
	Type string  `json:"type"`
	A    string  `json:"a"`
	B    string  `json:"b"`
	// Mbps is the new capacity (set_rate).
	Mbps float64 `json:"mbps,omitempty"`
	// DelayMs is the new one-way delay (set_delay).
	DelayMs float64 `json:"delay_ms,omitempty"`
	// Loss is the new (set_loss) or in-burst (loss_burst) probability.
	Loss float64 `json:"loss,omitempty"`
	// DurationMs is the burst window length (loss_burst).
	DurationMs float64 `json:"duration_ms,omitempty"`
}

// event converts the JSON form to the API form, rounding times like the
// link fields so emit -> build cycles are fixpoints.
func (se ScenarioEvent) event() Event {
	return Event{
		At:    time.Duration(math.Round(se.AtMs * float64(time.Millisecond))),
		Type:  se.Type,
		A:     se.A,
		B:     se.B,
		Mbps:  se.Mbps,
		Delay: time.Duration(math.Round(se.DelayMs * float64(time.Millisecond))),
		Loss:  se.Loss,
		Burst: time.Duration(math.Round(se.DurationMs * float64(time.Millisecond))),
	}
}

// scenarioEvent is the inverse of ScenarioEvent.event.
func scenarioEvent(e Event) ScenarioEvent {
	return ScenarioEvent{
		AtMs:       float64(e.At) / float64(time.Millisecond),
		Type:       e.Type,
		A:          e.A,
		B:          e.B,
		Mbps:       e.Mbps,
		DelayMs:    float64(e.Delay) / float64(time.Millisecond),
		Loss:       e.Loss,
		DurationMs: float64(e.Burst) / float64(time.Millisecond),
	}
}

// LoadScenario parses a scenario file without building it, e.g. to embed
// it in a Grid. Unknown fields are rejected.
func LoadScenario(r io.Reader) (*ScenarioFile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sf ScenarioFile
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("mptcpsim: scenario: %w", err)
	}
	return &sf, nil
}

// LoadNetwork parses a scenario file into a runnable Network.
func LoadNetwork(r io.Reader) (*Network, error) {
	sf, err := LoadScenario(r)
	if err != nil {
		return nil, err
	}
	return sf.Build()
}

// Build assembles the Network described by the file.
func (sf *ScenarioFile) Build() (*Network, error) {
	if len(sf.Links) == 0 {
		return nil, fmt.Errorf("mptcpsim: scenario has no links")
	}
	nw := NewNetwork()
	pairs := make(map[[2]string]bool, len(sf.Links))
	for i, l := range sf.Links {
		if l.A == "" || l.B == "" {
			return nil, fmt.Errorf("mptcpsim: link %d missing endpoint names", i)
		}
		// Links are addressed by node-name pair (paths, loss/queue
		// overrides, perturbations), so parallel links would be
		// unaddressable and overrides would land on the wrong one.
		pair := linkPair(l.A, l.B)
		if pairs[pair] {
			return nil, fmt.Errorf("mptcpsim: duplicate link %s-%s (parallel links are not expressible in scenario files)", l.A, l.B)
		}
		pairs[pair] = true
		if l.Mbps <= 0 {
			return nil, fmt.Errorf("mptcpsim: link %d (%s-%s) needs mbps > 0", i, l.A, l.B)
		}
		// Magnitude bounds, mirroring the event-parameter bounds: anything
		// near them is a typo, and inside them every float64 field
		// round-trips exactly through the integer bit/nanosecond units, so
		// parse → build → re-emit stays a fixpoint (fuzz-verified). The
		// lower rate bound rejects capacities that round to 0 bit/s and
		// could not be re-built from their own export.
		if l.Mbps < 1e-6 || l.Mbps > maxLinkMbps {
			return nil, fmt.Errorf("mptcpsim: link %d (%s-%s): mbps %g outside [1e-6, %g]", i, l.A, l.B, l.Mbps, float64(maxLinkMbps))
		}
		if l.DelayMs < 0 {
			return nil, fmt.Errorf("mptcpsim: link %d (%s-%s) has negative delay", i, l.A, l.B)
		}
		if l.DelayMs > maxLinkDelayMs {
			return nil, fmt.Errorf("mptcpsim: link %d (%s-%s): delay %g ms above %g ms", i, l.A, l.B, l.DelayMs, float64(maxLinkDelayMs))
		}
		if l.Loss < 0 {
			return nil, fmt.Errorf("mptcpsim: link %d (%s-%s) has negative loss", i, l.A, l.B)
		}
		// Round like AddLink rounds capacities: truncation would drift
		// non-representable delays by 1 ns per emit -> build cycle.
		delay := time.Duration(math.Round(l.DelayMs * float64(time.Millisecond)))
		nw.AddLink(l.A, l.B, l.Mbps, delay)
		if l.QueueBytes > 0 {
			if err := nw.SetQueue(l.A, l.B, l.QueueBytes); err != nil {
				return nil, err
			}
		}
		if l.Loss > 0 {
			if err := nw.SetLoss(l.A, l.B, l.Loss); err != nil {
				return nil, err
			}
		}
	}
	if sf.Endpoints.Src == "" || sf.Endpoints.Dst == "" {
		return nil, fmt.Errorf("mptcpsim: scenario missing endpoints")
	}
	if err := nw.Endpoints(sf.Endpoints.Src, sf.Endpoints.Dst); err != nil {
		return nil, err
	}
	if len(sf.Paths) == 0 {
		return nil, fmt.Errorf("mptcpsim: scenario declares no paths")
	}
	for i, p := range sf.Paths {
		num, err := nw.AddPath(p.Nodes...)
		if err != nil {
			return nil, fmt.Errorf("mptcpsim: path %d: %w", i+1, err)
		}
		if p.Name != "" {
			if err := nw.NamePath(num, p.Name); err != nil {
				return nil, err
			}
		}
	}
	for _, se := range sf.Events {
		// AddEvent errors name the event (time, type, link) themselves.
		if err := nw.AddEvent(se.event()); err != nil {
			return nil, err
		}
	}
	// Cross-event rules (down/up pairing, burst overlaps) need the whole
	// timeline; check them here so broken scenarios fail at parse/build
	// time, not at the first Run of a sweep.
	if _, err := nw.timeline(); err != nil {
		return nil, err
	}
	return nw, nil
}

// Scenario exports the network back into its on-disk description, the
// inverse of ScenarioFile.Build: duplex links in first-definition order
// with any queue/loss overrides, the endpoints, and the named paths.
// Building the returned file reproduces an equivalent network, so
// parse -> build -> re-emit is a fixpoint.
func (n *Network) Scenario() (*ScenarioFile, error) {
	if !n.ends {
		return nil, fmt.Errorf("mptcpsim: call Endpoints before exporting a scenario")
	}
	if len(n.paths) == 0 {
		return nil, fmt.Errorf("mptcpsim: declare paths before exporting a scenario")
	}
	// The format's magnitude bounds apply to API-built networks too: an
	// export the loader would reject must fail here, with the reason.
	if err := n.validateMagnitudes(); err != nil {
		return nil, err
	}
	g := n.graph
	sf := &ScenarioFile{}
	seen := make(map[topo.LinkID]bool)
	pairs := make(map[[2]string]bool)
	for _, l := range g.Links() {
		if seen[l.ID] {
			continue
		}
		a, b := g.Node(l.From).Name, g.Node(l.To).Name
		// The format addresses links by node-name pair, so a multigraph
		// built programmatically (repeated AddLink) cannot be described.
		pair := linkPair(a, b)
		if pairs[pair] {
			return nil, fmt.Errorf("mptcpsim: parallel links %s-%s are not expressible in scenario files", a, b)
		}
		pairs[pair] = true
		rev, ok := g.FindLink(l.To, l.From)
		if !ok {
			return nil, fmt.Errorf("mptcpsim: link %s-%s has no reverse direction", a, b)
		}
		seen[l.ID], seen[rev] = true, true
		sl := ScenarioLink{
			A:       a,
			B:       b,
			Mbps:    l.Rate.Mbit(),
			DelayMs: float64(l.Delay) / float64(time.Millisecond),
		}
		if l.Queue > 0 {
			sl.QueueBytes = int(l.Queue)
		}
		if p, ok := n.loss[l.ID]; ok {
			sl.Loss = p
		}
		sf.Links = append(sf.Links, sl)
	}
	sf.Endpoints.Src = g.Node(n.src).Name
	sf.Endpoints.Dst = g.Node(n.dst).Name
	for i, p := range n.paths {
		sp := ScenarioPath{Name: n.pathNames[i]}
		// Default display names are synthesized by Build; emitting them
		// would make re-emitted files differ from inputs with unnamed
		// paths, breaking the fixpoint property.
		if sp.Name == fmt.Sprintf("Path %d", i+1) {
			sp.Name = ""
		}
		for _, node := range p.Nodes {
			sp.Nodes = append(sp.Nodes, g.Node(node).Name)
		}
		sf.Paths = append(sf.Paths, sp)
	}
	for _, e := range n.events {
		sf.Events = append(sf.Events, scenarioEvent(e))
	}
	return sf, nil
}

// clone returns a deep copy of the scenario, so perturbations and event
// sets can modify their copy without touching the original. Every field of
// ScenarioFile must be covered here — both sweep-axis appliers rely on it.
func (sf *ScenarioFile) clone() *ScenarioFile {
	out := &ScenarioFile{
		Links:     append([]ScenarioLink(nil), sf.Links...),
		Endpoints: sf.Endpoints,
		Events:    append([]ScenarioEvent(nil), sf.Events...),
	}
	for _, path := range sf.Paths {
		out.Paths = append(out.Paths, ScenarioPath{
			Nodes: append([]string(nil), path.Nodes...),
			Name:  path.Name,
		})
	}
	return out
}

// linkPair normalizes an unordered node-name pair for duplicate checks.
func linkPair(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// PaperScenario returns the paper network as a scenario file, both as
// documentation of the format and for -topo round-trips.
func PaperScenario() *ScenarioFile {
	sf := &ScenarioFile{
		Links: []ScenarioLink{
			{A: "s", B: "v1", Mbps: 40, DelayMs: 1},
			{A: "v1", B: "v2", Mbps: 100, DelayMs: 2},
			{A: "v2", B: "v3", Mbps: 80, DelayMs: 2},
			{A: "v3", B: "d", Mbps: 100, DelayMs: 4},
			{A: "v1", B: "v3", Mbps: 100, DelayMs: 1},
			{A: "v3", B: "v4", Mbps: 60, DelayMs: 1},
			{A: "v4", B: "d", Mbps: 100, DelayMs: 1},
			{A: "s", B: "v2", Mbps: 100, DelayMs: 3},
		},
		Paths: []ScenarioPath{
			{Nodes: []string{"s", "v1", "v2", "v3", "d"}},
			{Nodes: []string{"s", "v1", "v3", "v4", "d"}},
			{Nodes: []string{"s", "v2", "v3", "v4", "d"}},
		},
	}
	sf.Endpoints.Src = "s"
	sf.Endpoints.Dst = "d"
	return sf
}
