package mptcpsim

import (
	"bytes"
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestGridExpandOrder(t *testing.T) {
	g := &Grid{
		CCs:    []string{"cubic", "olia"},
		Orders: [][]int{{1, 2, 3}, {2, 1, 3}},
		Seeds:  []int64{1, 2},
		Perturbations: []Perturbation{
			{Name: "base"},
			{Name: "shallow", QueueScale: 0.5},
		},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*2*2 {
		t.Fatalf("expanded %d specs, want 16", len(specs))
	}
	// Seeds vary fastest, then orders, then CCs, then perturbations.
	if specs[0].Options.Seed != 1 || specs[1].Options.Seed != 2 {
		t.Fatalf("seeds not fastest axis: %d, %d", specs[0].Options.Seed, specs[1].Options.Seed)
	}
	if !reflect.DeepEqual(specs[2].Options.SubflowPaths, []int{2, 1, 3}) {
		t.Fatalf("order axis wrong: %v", specs[2].Options.SubflowPaths)
	}
	if specs[4].Options.CC != "olia" {
		t.Fatalf("cc axis wrong: %q", specs[4].Options.CC)
	}
	if specs[8].Perturbation != "shallow" {
		t.Fatalf("perturbation axis wrong: %q", specs[8].Perturbation)
	}
	if specs[8].Options.QueueScale != 0.5 {
		t.Fatalf("perturbation queue scale not forwarded: %v", specs[8].Options.QueueScale)
	}
	for i, s := range specs {
		if s.Index != i {
			t.Fatalf("spec %d has index %d", i, s.Index)
		}
		if s.Scenario != "paper" {
			t.Fatalf("default scenario = %q, want paper", s.Scenario)
		}
	}
}

func TestPerturbationScenarioFilter(t *testing.T) {
	wifi := PaperScenario() // stand-in second scenario
	g := &Grid{
		Scenarios: []GridScenario{
			{Name: "paper", Paper: true},
			{Name: "other", Scenario: wifi},
		},
		Perturbations: []Perturbation{
			{Name: "base"},
			{Name: "only-other", Scenarios: []string{"other"}, DelayScale: 2},
		},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("expanded %d specs, want 3 (paper/base, other/base, other/only-other)", len(specs))
	}
	for _, s := range specs {
		if s.Scenario == "paper" && s.Perturbation == "only-other" {
			t.Fatal("scoped perturbation applied to the wrong scenario")
		}
	}
}

func TestGridExpandRejectsUnknownScenarioFilter(t *testing.T) {
	g := &Grid{
		Perturbations: []Perturbation{{Name: "lossy", Scenarios: []string{"papr"}, Loss: 0.01}},
	}
	if _, err := g.Expand(); err == nil {
		t.Fatal("accepted a perturbation scoped to a nonexistent scenario")
	}
}

func TestGridExpandRejectsFullyExcludedScenario(t *testing.T) {
	g := &Grid{
		Scenarios: []GridScenario{
			{Name: "a", Paper: true},
			{Name: "b", Paper: true},
		},
		Perturbations: []Perturbation{{Name: "lossy", Scenarios: []string{"a"}, Loss: 0.01}},
	}
	if _, err := g.Expand(); err == nil {
		t.Fatal("accepted a grid whose filters drop scenario b entirely")
	}
}

func TestGridExpandRejectsDuplicateScenarioNames(t *testing.T) {
	g := &Grid{Scenarios: []GridScenario{
		{Name: "paper", Paper: true},
		{Name: "paper", Scenario: PaperScenario()},
	}}
	if _, err := g.Expand(); err == nil {
		t.Fatal("accepted duplicate scenario names (groups would pool unrelated topologies)")
	}
}

func TestGridExpandRejectsDuplicatePerturbationNames(t *testing.T) {
	for name, perts := range map[string][]Perturbation{
		"explicit": {{Name: "lossy", Loss: 0.001}, {Name: "lossy", Loss: 0.05}},
		"default":  {{QueueScale: 2}, {Name: "p1", Loss: 0.01}},
	} {
		g := &Grid{Perturbations: perts}
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: accepted duplicate perturbation names", name)
		}
	}
}

func TestPerturbationRejectsBadLinkLoss(t *testing.T) {
	for name, pert := range map[string]Perturbation{
		"loss > 1":        {Name: "bad", Links: []LinkPerturbation{{A: "s", B: "v1", Loss: 1.5}}},
		"negative":        {Name: "bad", Links: []LinkPerturbation{{A: "s", B: "v1", Mbps: -10}}},
		"negative global": {Name: "bad", Loss: -0.005},
		"negative scale":  {Name: "bad", DelayScale: -1},
	} {
		g := &Grid{Perturbations: []Perturbation{pert}}
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: accepted at expansion time", name)
		}
	}
}

func TestGridExpandValidatesInlineScenario(t *testing.T) {
	broken := &ScenarioFile{
		Links: []ScenarioLink{{A: "a", B: "b", Mbps: 10, DelayMs: 1}},
		Paths: []ScenarioPath{{Nodes: []string{"a", "missing"}}},
	}
	broken.Endpoints.Src, broken.Endpoints.Dst = "a", "b"
	g := &Grid{Scenarios: []GridScenario{{Name: "broken", Scenario: broken}}}
	if _, err := g.Expand(); err == nil {
		t.Fatal("expanded a grid whose inline scenario cannot build")
	}
}

func TestGridExpandRejectsUnresolvedFile(t *testing.T) {
	g := &Grid{Scenarios: []GridScenario{{Name: "x", File: "x.json"}}}
	if _, err := g.Expand(); err == nil {
		t.Fatal("expanded a grid with an unresolved file reference")
	}
}

func TestGridExpandRejectsAmbiguousScenario(t *testing.T) {
	g := &Grid{Scenarios: []GridScenario{{Name: "x", Paper: true, Scenario: PaperScenario()}}}
	if _, err := g.Expand(); err == nil {
		t.Fatal("accepted a scenario with more than one selector set")
	}
}

func TestLoadGrid(t *testing.T) {
	src := `{
		"ccs": ["cubic", "lia"],
		"orders": [[2,1,3]],
		"seeds": [7],
		"duration_ms": 250,
		"perturbations": [{"name": "lossy", "loss": 0.01}]
	}`
	g, err := LoadGrid(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded %d specs, want 2", len(specs))
	}
	if specs[0].Options.Duration != 250*time.Millisecond {
		t.Fatalf("duration = %v", specs[0].Options.Duration)
	}
	if specs[0].Options.Seed != 7 || specs[0].Perturbation != "lossy" {
		t.Fatalf("spec = %+v", specs[0])
	}

	if _, err := LoadGrid(strings.NewReader(`{"zzz": 1}`)); err == nil {
		t.Fatal("accepted unknown grid field")
	}
}

func TestPerturbationApply(t *testing.T) {
	sf := PaperScenario()
	p := Perturbation{
		DelayScale: 2,
		Loss:       0.01,
		Links:      []LinkPerturbation{{A: "v1", B: "s", Mbps: 20, QueueBytes: 9000}},
	}
	out, err := p.apply(sf)
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if sf.Links[0].DelayMs != 1 || sf.Links[0].Loss != 0 {
		t.Fatalf("perturbation mutated the input: %+v", sf.Links[0])
	}
	if out.Links[0].DelayMs != 2 || out.Links[0].Loss != 0.01 {
		t.Fatalf("global perturbation not applied: %+v", out.Links[0])
	}
	// The link override matches s-v1 in reverse direction.
	if out.Links[0].Mbps != 20 || out.Links[0].QueueBytes != 9000 {
		t.Fatalf("link override not applied: %+v", out.Links[0])
	}
	if _, err := out.Build(); err != nil {
		t.Fatalf("perturbed scenario does not build: %v", err)
	}

	if _, err := (Perturbation{Links: []LinkPerturbation{{A: "no", B: "pe", Mbps: 5}}}).apply(sf); err == nil {
		t.Fatal("accepted a perturbation of an unknown link")
	}
	if _, err := (Perturbation{Links: []LinkPerturbation{{A: "s", B: "v1"}}}).apply(sf); err == nil {
		t.Fatal("accepted a link override that sets no field")
	}

	if _, err := (Perturbation{Loss: 2}).apply(sf); err == nil {
		t.Fatal("accepted a global loss above 1 (typo'd percentage)")
	}

	// Added loss on an already-lossy link still clamps the sum at 1.
	lossy := &ScenarioFile{Links: append([]ScenarioLink(nil), sf.Links...)}
	lossy.Endpoints = sf.Endpoints
	lossy.Paths = sf.Paths
	lossy.Links[0].Loss = 0.8
	summed, err := (Perturbation{Loss: 0.5}).apply(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if summed.Links[0].Loss != 1 {
		t.Fatalf("summed loss not capped: %v", summed.Links[0].Loss)
	}
}

// TestSweepDeterminism is the acceptance check: the same grid produces a
// bit-identical SweepResult no matter how many workers execute it, and
// across repeated executions. The lossy perturbation matters: it puts
// random loss on every link, which once exposed a map-iteration-order
// nondeterminism in the per-link RNG assignment.
func TestSweepDeterminism(t *testing.T) {
	grid := &Grid{
		CCs:    []string{"cubic", "olia"},
		Orders: [][]int{{2, 1, 3}, {1, 2, 3}},
		Seeds:  []int64{1, 2},
		Perturbations: []Perturbation{
			{Name: "base"},
			{Name: "lossy", Loss: 0.005},
		},
		DurationMs: 200,
	}
	var outputs []string
	for _, workers := range []int{1, 8, 8} {
		s := &Sweep{Workers: workers}
		res, err := s.Run(grid)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Runs) != 16 {
			t.Fatalf("workers=%d: %d runs, want 16", workers, len(res.Runs))
		}
		if n := res.Errs(); n != 0 {
			t.Fatalf("workers=%d: %d runs failed: %+v", workers, n, res.Runs)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("sweep output differs between 1 and 8 workers:\n--- w1 ---\n%s\n--- w8 ---\n%s",
			outputs[0], outputs[1])
	}
	if outputs[1] != outputs[2] {
		t.Fatal("sweep output differs between two identical executions")
	}
}

func TestSweepGapsAndGroups(t *testing.T) {
	grid := &Grid{
		CCs:        []string{"cubic", "lia"},
		Orders:     [][]int{{2, 1, 3}, {1, 2, 3}},
		DurationMs: 200,
	}
	res, err := (&Sweep{Workers: 4, Keep: true}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (one per CC)", len(res.Groups))
	}
	for _, g := range res.Groups {
		if g.Runs != 2 {
			t.Fatalf("group %s has %d runs, want 2", g.CC, g.Runs)
		}
		if g.Gap.N != 2 {
			t.Fatalf("group %s gap sample = %d", g.CC, g.Gap.N)
		}
	}
	if res.Gap.N != 4 {
		t.Fatalf("overall gap sample = %d, want 4", res.Gap.N)
	}
	for _, run := range res.Runs {
		if math.Abs(run.OptimumMbps-90) > 1e-6 {
			t.Fatalf("run %d LP optimum = %v, want 90", run.Index, run.OptimumMbps)
		}
		if run.Gap <= -0.5 || run.Gap >= 1 {
			t.Fatalf("run %d gap out of range: %v", run.Index, run.Gap)
		}
		if res.Results[run.Index] == nil {
			t.Fatalf("Keep did not retain result %d", run.Index)
		}
	}
	// The per-run gap must be consistent with the retained Result.
	for i, run := range res.Runs {
		if got := res.Results[i].Summary.Gap; got != run.Gap {
			t.Fatalf("run %d summary gap %v != sweep gap %v", i, got, run.Gap)
		}
	}
}

func TestGridExpandRejectsUnknownAxisValues(t *testing.T) {
	for name, g := range map[string]*Grid{
		"cc":        {CCs: []string{"cubci"}},
		"scheduler": {Schedulers: []string{"blast"}},
	} {
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: typo'd axis value accepted at expansion time", name)
		}
	}
}

func TestGridExpandRejectsDuplicateAxisValues(t *testing.T) {
	for name, g := range map[string]*Grid{
		"cc":          {CCs: []string{"cubic", "CUBIC"}},
		"scheduler":   {Schedulers: []string{"", "minrtt"}},
		"sched alias": {Schedulers: []string{"rr", "roundrobin"}},
		"order":       {Orders: [][]int{{1, 2}, {1, 2}}},
		"seed":        {Seeds: []int64{3, 3}},
		"seed 0 vs 1": {Seeds: []int64{0, 1}},
	} {
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: duplicate axis value accepted (would double-count runs)", name)
		}
	}
}

func TestGridExpandRejectsBadOrder(t *testing.T) {
	for name, orders := range map[string][][]int{
		"out of range":   {{1, 2, 3}, {9, 1, 2}},
		"repeated":       {{2, 2, 1}},
		"auto collision": {{}, {1, 2, 3}},
	} {
		g := &Grid{Orders: orders}
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: bad order accepted at expansion time", name)
		}
	}
}

func TestRunRejectsRepeatedSubflowPath(t *testing.T) {
	if _, err := RunPaper(Options{SubflowPaths: []int{2, 2, 1}, Duration: 100 * time.Millisecond}); err == nil {
		t.Fatal("Run accepted a repeated subflow path (duplicate tag, corrupted greedy baseline)")
	}
}

func TestSweepLabelsUseCanonicalSpellings(t *testing.T) {
	grid := &Grid{
		CCs:        []string{"CUBIC"},
		Schedulers: []string{"rr"},
		DurationMs: 100,
	}
	res, err := (&Sweep{Workers: 1}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].CC != "cubic" || res.Runs[0].Scheduler != "roundrobin" {
		t.Fatalf("labels not canonical: cc=%q scheduler=%q", res.Runs[0].CC, res.Runs[0].Scheduler)
	}
}

func TestSweepRecordsRunErrors(t *testing.T) {
	// Base options flow through Expand unvalidated (they are Run's
	// domain); a failure there must be recorded per run, not abort the
	// sweep.
	grid := &Grid{
		CCs:        []string{"cubic", "olia"},
		DurationMs: 100,
		Base:       Options{CrossTCP: []int{9}},
	}
	res, err := (&Sweep{Workers: 2}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errs() != 2 {
		t.Fatalf("errs = %d, want 2", res.Errs())
	}
	for _, run := range res.Runs {
		if run.Err == "" {
			t.Fatalf("missing run error: %+v", run)
		}
	}
	// Failed runs join their groups as errors, not samples.
	for _, g := range res.Groups {
		if g.Errors != 1 || g.Runs != 0 {
			t.Fatalf("group error accounting wrong: %+v", g)
		}
	}
	if res.Gap.N != 0 {
		t.Fatalf("overall gap includes failed runs: N=%d", res.Gap.N)
	}
	// Failed rows blank their metric cells so a 0.00 gap cannot be read
	// as an optimal run.
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[1:] {
		// gap_pct (12), optimum_mbps (8), target_mbps (9), converged (13).
		if rec[12] != "" || rec[8] != "" || rec[9] != "" || rec[13] != "" {
			t.Fatalf("failed run has metric cells: %v", rec)
		}
		if rec[16] == "" {
			t.Fatalf("failed run missing err cell: %v", rec)
		}
	}
}

func TestSweepCSVOutputs(t *testing.T) {
	grid := &Grid{DurationMs: 100}
	res, err := (&Sweep{Workers: 1}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	var runs, groups bytes.Buffer
	if err := res.WriteCSV(&runs); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteGroupsCSV(&groups); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(runs.String(), "\n"); lines != 2 {
		t.Fatalf("runs CSV has %d lines, want header+1", lines)
	}
	if !strings.HasPrefix(runs.String(), "index,scenario,") {
		t.Fatalf("runs CSV header: %q", runs.String())
	}
	if lines := strings.Count(groups.String(), "\n"); lines != 2 {
		t.Fatalf("groups CSV has %d lines, want header+1", lines)
	}
	var report bytes.Buffer
	if err := res.Report(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "sweep: 1 runs") {
		t.Fatalf("report: %q", report.String())
	}
}

func TestSweepCSVEscapesNames(t *testing.T) {
	// Scenario and perturbation names come straight from user JSON and may
	// contain CSV metacharacters.
	grid := &Grid{
		Scenarios:     []GridScenario{{Name: `paper, "v2"`, Paper: true}},
		Perturbations: []Perturbation{{Name: "a,b"}},
		DurationMs:    100,
	}
	res, err := (&Sweep{Workers: 1}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	var runs, groups bytes.Buffer
	if err := res.WriteCSV(&runs); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteGroupsCSV(&groups); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{"runs": runs.String(), "groups": groups.String()} {
		if !strings.Contains(out, `"paper, ""v2"""`) || !strings.Contains(out, `"a,b"`) {
			t.Fatalf("%s CSV not escaped:\n%s", name, out)
		}
	}
	// Field counts stay aligned despite the embedded commas.
	rows := strings.Split(strings.TrimSpace(runs.String()), "\n")
	r := csv.NewReader(strings.NewReader(runs.String()))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("runs CSV unparseable: %v\n%s", err, runs.String())
	}
	if len(recs) != len(rows) || len(recs[0]) != len(recs[1]) {
		t.Fatalf("runs CSV misaligned: %v", recs)
	}
}

// handoverEvents is a link_down/link_up pair on the paper network's s-v1
// link for grid tests.
func handoverEvents() []ScenarioEvent {
	return []ScenarioEvent{
		{AtMs: 100, Type: EventLinkDown, A: "s", B: "v1"},
		{AtMs: 150, Type: EventLinkUp, A: "s", B: "v1"},
	}
}

func TestGridEventsAxisExpansion(t *testing.T) {
	g := &Grid{
		CCs:   []string{"cubic", "olia"},
		Seeds: []int64{1, 2},
		Events: []EventSet{
			{Name: "static"},
			{Name: "outage", Events: handoverEvents()},
		},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*2 {
		t.Fatalf("expanded %d specs, want 8", len(specs))
	}
	// Event sets vary slower than CCs: the first 4 specs are static.
	for i, s := range specs {
		want := "static"
		if i >= 4 {
			want = "outage"
		}
		if s.Events != want {
			t.Fatalf("spec %d events = %q, want %q", i, s.Events, want)
		}
	}
	if specs[4].Options.CC != "cubic" || specs[6].Options.CC != "olia" {
		t.Fatalf("cc axis wrong under events: %q, %q", specs[4].Options.CC, specs[6].Options.CC)
	}
}

func TestGridEventsAxisValidation(t *testing.T) {
	for name, g := range map[string]*Grid{
		"unknown link": {Events: []EventSet{{Name: "bad", Events: []ScenarioEvent{
			{AtMs: 100, Type: EventLinkDown, A: "s", B: "nowhere"}}}}},
		"bad type": {Events: []EventSet{{Name: "bad", Events: []ScenarioEvent{
			{AtMs: 100, Type: "zap", A: "s", B: "v1"}}}}},
		"negative time": {Events: []EventSet{{Name: "bad", Events: []ScenarioEvent{
			{AtMs: -1, Type: EventLinkDown, A: "s", B: "v1"}}}}},
		"up without down": {Events: []EventSet{{Name: "bad", Events: []ScenarioEvent{
			{AtMs: 100, Type: EventLinkUp, A: "s", B: "v1"}}}}},
		"duplicate names": {Events: []EventSet{{Name: "x"}, {Name: "x"}}},
		"unknown scenario filter": {Events: []EventSet{{Name: "x",
			Scenarios: []string{"papr"}, Events: handoverEvents()}}},
		"fully excluded scenario": {
			Scenarios: []GridScenario{{Name: "a", Paper: true}, {Name: "b", Paper: true}},
			Events:    []EventSet{{Name: "x", Scenarios: []string{"a"}}},
		},
	} {
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: accepted at expansion time", name)
		}
	}
}

// TestGridEventTargetsValidatedAgainstPerturbedLinks: event validation
// runs on the final (perturbed) topology, so a perturbation cannot smuggle
// a broken event target past expansion.
func TestGridEventTargetsValidatedAgainstPerturbedLinks(t *testing.T) {
	g := &Grid{
		Events: []EventSet{{Name: "outage", Events: handoverEvents()}},
		Perturbations: []Perturbation{
			{Name: "base"},
			{Name: "lossy", Loss: 0.001},
		},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// base and lossy each cross the outage set.
	if len(specs) != 2 {
		t.Fatalf("expanded %d specs, want 2", len(specs))
	}
	// The perturbation's loss survives in the event-carrying scenario.
	if specs[1].scenario.Links[0].Loss == 0 {
		t.Fatal("perturbation dropped by event-set application")
	}
	if len(specs[1].scenario.Events) != 2 {
		t.Fatal("events dropped by perturbation application")
	}
}

// TestSweepDeterminismWithEvents is the acceptance check for the dynamic
// axis: a grid containing a LinkDown event timeline produces bit-identical
// output for any worker count.
func TestSweepDeterminismWithEvents(t *testing.T) {
	grid := &Grid{
		CCs:   []string{"cubic", "olia"},
		Seeds: []int64{1, 2},
		Events: []EventSet{
			{Name: "static"},
			{Name: "outage", Events: []ScenarioEvent{
				{AtMs: 2000, Type: EventLinkDown, A: "s", B: "v1"},
			}},
		},
	}
	var outputs []string
	for _, workers := range []int{1, 8} {
		res, err := (&Sweep{Workers: workers}).Run(grid)
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Errs(); n != 0 {
			t.Fatalf("workers=%d: %d runs failed: %+v", workers, n, res.Runs)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatal("event sweep output differs between 1 and 8 workers")
	}
	// The outage cells see the piecewise optimum: their gap is measured
	// against the time-weighted target, so the runs stay comparable.
	res, err := (&Sweep{Workers: 4}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d, want 4 (2 event sets x 2 CCs)", len(res.Groups))
	}
	for _, g := range res.Groups {
		if g.Events != "static" && g.Events != "outage" {
			t.Fatalf("group events label %q", g.Events)
		}
	}
	// TargetMbps reconciles the exported Gap with the exported totals:
	// static cells target the LP optimum, outage cells the (lower)
	// time-weighted piecewise optimum.
	for _, run := range res.Runs {
		if run.Events == "static" && run.TargetMbps != run.OptimumMbps {
			t.Fatalf("static run target %v != optimum %v", run.TargetMbps, run.OptimumMbps)
		}
		if run.Events == "outage" && run.TargetMbps >= run.OptimumMbps {
			t.Fatalf("outage run target %v not below optimum %v", run.TargetMbps, run.OptimumMbps)
		}
		if got := 1 - run.TotalMbps/run.TargetMbps; math.Abs(got-run.Gap) > 1e-9 {
			t.Fatalf("gap %v does not reconcile with total/target (%v)", run.Gap, got)
		}
	}
}
