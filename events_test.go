package mptcpsim

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestDynamicLinkDownEpochs is the acceptance scenario: a LinkDown at
// t=2s on the paper network cuts paths 1 and 2 (both cross s-v1), the LP
// baseline becomes piecewise (90 Mbps, then 60 on path 3 alone), and the
// measured traffic re-converges to the post-failure optimum.
func TestDynamicLinkDownEpochs(t *testing.T) {
	run := func() *Result {
		nw := PaperNetwork()
		if err := nw.AddEvent(Event{At: 2 * time.Second, Type: EventLinkDown, A: "s", B: "v1"}); err != nil {
			t.Fatal(err)
		}
		res, err := Run(nw, Options{CC: "cubic", Seed: 1, SubflowPaths: []int{2, 1, 3}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(res.Epochs))
	}
	e0, e1 := res.Epochs[0], res.Epochs[1]
	if e0.Start != 0 || e0.End != 2*time.Second || e1.Start != 2*time.Second || e1.End != 4*time.Second {
		t.Fatalf("epoch bounds wrong: %+v %+v", e0, e1)
	}
	if math.Abs(e0.Optimum.Total-90) > 1e-6 {
		t.Fatalf("epoch 1 optimum = %v, want 90", e0.Optimum.Total)
	}
	if math.Abs(e1.Optimum.Total-60) > 1e-6 {
		t.Fatalf("epoch 2 optimum = %v, want 60 (path 3 alone)", e1.Optimum.Total)
	}
	want := []float64{0, 0, 60}
	for i, v := range want {
		if math.Abs(e1.Optimum.PerPath[i]-v) > 1e-6 {
			t.Fatalf("epoch 2 allocation = %v, want %v", e1.Optimum.PerPath, want)
		}
	}
	// The gap of each epoch is measured against that epoch's optimum: the
	// post-failure epoch must sit essentially on its 60 Mbps optimum even
	// though it is far below the static 90.
	if math.Abs(e1.Gap) > 0.08 {
		t.Fatalf("post-failure gap = %.3f vs the active epoch, want ~0", e1.Gap)
	}
	if !e1.Converged {
		t.Fatal("traffic did not re-converge to the post-failure optimum")
	}
	// Paths 1 and 2 are dead after the cut.
	if e1.PathMeans[0] > 1 || e1.PathMeans[1] > 1 {
		t.Fatalf("dead paths still carry traffic: %v", e1.PathMeans)
	}
	if e1.PathMeans[2] < 55 {
		t.Fatalf("surviving path at %.1f Mbps, want ~60", e1.PathMeans[2])
	}
	// Summary.Gap is measured against the time-weighted piecewise optimum,
	// not the stale static 90: the run tracks both epochs well, so the gap
	// must be far below the ~33%% it would show against 90 Mbps.
	if res.Summary.Gap > 0.15 {
		t.Fatalf("summary gap %.3f not computed against the piecewise optimum", res.Summary.Gap)
	}
	// The static headline optimum is still the initial topology's.
	if math.Abs(res.Optimum.Total-90) > 1e-6 {
		t.Fatalf("static optimum = %v", res.Optimum.Total)
	}
	// For dynamic runs Summary convergence means settling into the final
	// epoch's band, not the synthetic time-weighted one.
	if res.Summary.Converged != e1.Converged || res.Summary.ConvergedAt != e1.ConvergedAt {
		t.Fatalf("summary convergence %v@%v != final epoch %v@%v",
			res.Summary.Converged, res.Summary.ConvergedAt, e1.Converged, e1.ConvergedAt)
	}
	if len(res.Events) != 1 || res.Events[0].Type != EventLinkDown {
		t.Fatalf("events not echoed: %+v", res.Events)
	}

	// Bit-identical determinism: same seed, same series.
	res2 := run()
	if res.Packets != res2.Packets || res.DeliveredBytes != res2.DeliveredBytes {
		t.Fatalf("dynamic run not deterministic: %d/%d vs %d/%d",
			res.Packets, res.DeliveredBytes, res2.Packets, res2.DeliveredBytes)
	}
	for i := range res.Total.Mbps {
		if res.Total.Mbps[i] != res2.Total.Mbps[i] {
			t.Fatalf("series diverge at bin %d", i)
		}
	}
}

// TestStaticRunHasSingleEpoch: a run without events reports exactly one
// epoch spanning the run, consistent with the static baseline.
func TestStaticRunHasSingleEpoch(t *testing.T) {
	res, err := RunPaper(Options{Duration: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 1 {
		t.Fatalf("epochs = %d, want 1", len(res.Epochs))
	}
	ep := res.Epochs[0]
	if ep.Start != 0 || ep.End != 500*time.Millisecond {
		t.Fatalf("epoch bounds: %+v", ep)
	}
	if ep.Optimum.Total != res.Optimum.Total {
		t.Fatalf("single epoch optimum %v != static %v", ep.Optimum.Total, res.Optimum.Total)
	}
	if len(res.Events) != 0 {
		t.Fatalf("static run has events: %v", res.Events)
	}
}

// TestLinkUpRestoresCapacityEpoch: down at 1s, up at 2.5s -> three epochs
// with the middle one degraded, and traffic recovering in the last.
func TestLinkUpRestoresCapacityEpoch(t *testing.T) {
	nw := PaperNetwork()
	for _, e := range []Event{
		{At: time.Second, Type: EventLinkDown, A: "s", B: "v1"},
		{At: 2500 * time.Millisecond, Type: EventLinkUp, A: "s", B: "v1"},
	} {
		if err := nw.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(nw, Options{CC: "cubic", Seed: 1, Duration: 6 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(res.Epochs))
	}
	if math.Abs(res.Epochs[0].Optimum.Total-90) > 1e-6 ||
		math.Abs(res.Epochs[1].Optimum.Total-60) > 1e-6 ||
		math.Abs(res.Epochs[2].Optimum.Total-90) > 1e-6 {
		t.Fatalf("epoch optima: %v %v %v, want 90/60/90",
			res.Epochs[0].Optimum.Total, res.Epochs[1].Optimum.Total, res.Epochs[2].Optimum.Total)
	}
	// Recovery: the final epoch carries more than the outage epoch.
	if res.Epochs[2].TotalMean <= res.Epochs[1].TotalMean {
		t.Fatalf("no recovery after link_up: %.1f then %.1f",
			res.Epochs[1].TotalMean, res.Epochs[2].TotalMean)
	}
	// Paths 1 and 2 actually come back.
	if res.Epochs[2].PathMeans[0]+res.Epochs[2].PathMeans[1] < 5 {
		t.Fatalf("restored paths idle: %v", res.Epochs[2].PathMeans)
	}
}

// TestSetRateEventChangesEpochOptimum: renegotiating v3-v4 down to 20
// Mbps moves the LP optimum to 70 (x2+x3 <= 20 binds).
func TestSetRateEventChangesEpochOptimum(t *testing.T) {
	nw := PaperNetwork()
	if err := nw.AddEvent(Event{At: time.Second, Type: EventSetRate, A: "v3", B: "v4", Mbps: 20}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, Options{CC: "cubic", Seed: 1, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(res.Epochs))
	}
	// max x1+x2+x3 s.t. x1+x2<=40, x2+x3<=20, x1+x3<=80: optimum 60.
	if math.Abs(res.Epochs[1].Optimum.Total-60) > 1e-6 {
		t.Fatalf("renegotiated optimum = %v, want 60", res.Epochs[1].Optimum.Total)
	}
	// The slower link must actually shed throughput.
	if res.Epochs[1].TotalMean >= res.Epochs[0].TotalMean {
		t.Fatalf("rate cut had no effect: %.1f then %.1f",
			res.Epochs[0].TotalMean, res.Epochs[1].TotalMean)
	}
}

// TestLossBurstDegradesWindow: a heavy loss burst mid-run dents throughput
// during the burst window and restores the pre-burst probability after.
func TestLossBurstDegradesWindow(t *testing.T) {
	nw := PaperNetwork()
	if err := nw.AddEvent(Event{
		At: time.Second, Type: EventLossBurst, A: "s", B: "v2",
		Loss: 0.3, Burst: 500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, Options{CC: "cubic", Seed: 1, Duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Loss events do not open LP epochs.
	if len(res.Epochs) != 1 {
		t.Fatalf("loss burst opened an epoch: %d", len(res.Epochs))
	}
	// Path 3 (the only user of s-v2) suffers during the burst window and
	// recovers after.
	p3 := res.Paths[2]
	during := p3.Mean(time.Second, 1500*time.Millisecond)
	after := p3.Mean(2*time.Second, 3*time.Second)
	if during >= after {
		t.Fatalf("burst did not dent path 3: during=%.1f after=%.1f", during, after)
	}
	if res.Drops["s->v2"] == 0 {
		t.Fatal("burst produced no drops on s->v2")
	}
}

// TestSetDelayEventRuns: a delay change mid-run keeps the connection alive
// and does not open an epoch.
func TestSetDelayEventRuns(t *testing.T) {
	nw := PaperNetwork()
	if err := nw.AddEvent(Event{At: time.Second, Type: EventSetDelay, A: "s", B: "v1", Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, Options{CC: "cubic", Seed: 1, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 1 {
		t.Fatalf("delay event opened an epoch: %d", len(res.Epochs))
	}
	if res.Summary.TotalMean < 40 {
		t.Fatalf("throughput collapsed after delay change: %.1f", res.Summary.TotalMean)
	}
}

// TestEventValidation: broken events are rejected at AddEvent or at
// timeline build, never mid-simulation.
func TestEventValidation(t *testing.T) {
	nw := PaperNetwork()
	for name, e := range map[string]Event{
		"unknown type":  {At: time.Second, Type: "explode", A: "s", B: "v1"},
		"unknown link":  {At: time.Second, Type: EventLinkDown, A: "s", B: "d"},
		"negative time": {At: -time.Second, Type: EventLinkDown, A: "s", B: "v1"},
		"zero rate":     {At: time.Second, Type: EventSetRate, A: "s", B: "v1"},
		"loss > 1":      {At: time.Second, Type: EventSetLoss, A: "s", B: "v1", Loss: 2},
		"burst no len":  {At: time.Second, Type: EventLossBurst, A: "s", B: "v1", Loss: 0.5},
	} {
		if err := nw.AddEvent(e); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if len(nw.Events()) != 0 {
		t.Fatalf("rejected events were stored: %v", nw.Events())
	}
	// Cross-event rule: up without down is caught at Run.
	if err := nw.AddEvent(Event{At: time.Second, Type: EventLinkUp, A: "s", B: "v1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nw, Options{Duration: 100 * time.Millisecond}); err == nil {
		t.Fatal("link_up without a preceding link_down ran")
	}
}

// TestChartMarksEvents: the ASCII chart draws a vertical marker at each
// event time.
func TestChartMarksEvents(t *testing.T) {
	nw := PaperNetwork()
	if err := nw.AddEvent(Event{At: time.Second, Type: EventLinkDown, A: "s", B: "v1"}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, Options{CC: "cubic", Seed: 1, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Chart(&buf, "dyn"); err != nil {
		t.Fatal(err)
	}
	// Every row starts with the "|" axis; the event marker adds a second
	// "|" mid-plot on rows no series overwrites.
	marked := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Count(line, "|") >= 2 {
			marked = true
			break
		}
	}
	if !marked {
		t.Fatal("chart has no event marker")
	}
	var rep bytes.Buffer
	if err := res.Report(&rep); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"event:", "epoch 1:", "epoch 2:", "link_down"} {
		if !strings.Contains(rep.String(), frag) {
			t.Fatalf("report missing %q:\n%s", frag, rep.String())
		}
	}
}
