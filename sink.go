package mptcpsim

import (
	"errors"
	"fmt"
	"sort"

	"mptcpsim/internal/stats"
	"mptcpsim/internal/telemetry"
)

// ErrSinkClosed is returned (wrapped) by sinks whose Accept — or a second
// Close — arrives after Close. The sink contract promises exactly one
// Close after the last Accept; sinks with externally visible finalisation
// (a run-log's commit mark, an aggregate snapshot handed to a merge)
// enforce it rather than silently accepting records past the end.
var ErrSinkClosed = errors.New("sink already closed")

// RunSink is the single results surface of a sweep: every execution path
// (Run, RunShard, Stream) feeds exactly one sink chain, and everything
// else — the in-memory SweepResult, NDJSON run-logs, online aggregation,
// the deprecated OnResult/OnFailure hooks — is a sink over that path.
//
// Accept is called exactly once per executed run, serialised under the
// sweep's completion lock: implementations need no locking of their own,
// done increases by exactly one per call, and done == total exactly when
// the last run lands. Runs arrive in completion order, not index order;
// sinks that need expansion order sort by RunSummary.Index. full is the
// run's complete Result when one exists (always for completed runs; for
// failed runs only when telemetry captured a partial result) and is
// released to the garbage collector as soon as Accept returns — a sink
// must copy what it needs and must not retain full unless retention is
// its purpose, or sweep memory stops being flat in grid size.
//
// The first Accept error poisons the sweep: remaining runs still execute
// (the worker pool is not cancelled) but are no longer delivered, and the
// error is returned from the sweep entry point.
type RunSink interface {
	Accept(done, total int, s RunSummary, full *Result) error
	// Flush forces any buffered state through to its destination (for
	// durable sinks, onto the disk).
	Flush() error
	// Close finalises the sink after the last Accept; Close implies Flush.
	// The sweep entry point that was handed the sink calls Close exactly
	// once, even when a run or an Accept failed.
	Close() error
}

// MultiSink fans every Accept, Flush and Close out to each sink in order.
// All sinks see every call even when an earlier one errors; the first
// error is returned. Once closed, the fan-out refuses further Accepts
// (and a second Close) with ErrSinkClosed instead of forwarding them.
func MultiSink(sinks ...RunSink) RunSink { return &multiSink{sinks: sinks} }

type multiSink struct {
	sinks  []RunSink
	closed bool
}

func (m *multiSink) Accept(done, total int, s RunSummary, full *Result) error {
	if m.closed {
		return fmt.Errorf("multi sink: %w", ErrSinkClosed)
	}
	var first error
	for _, sink := range m.sinks {
		if err := sink.Accept(done, total, s, full); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *multiSink) Flush() error {
	var first error
	for _, sink := range m.sinks {
		if err := sink.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *multiSink) Close() error {
	if m.closed {
		return fmt.Errorf("multi sink: %w", ErrSinkClosed)
	}
	m.closed = true
	var first error
	for _, sink := range m.sinks {
		if err := sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MemorySink accumulates every RunSummary (and, with Keep, every full
// Result) and assembles them into the classic SweepResult — the sink
// behind Sweep.Run, and the memory ceiling streaming sweeps exist to
// avoid. Peak memory is linear in grid size.
type MemorySink struct {
	// Keep retains each run's full Result (memory heavy).
	Keep bool

	runs    []RunSummary
	results []*Result
	sorted  bool
}

func (m *MemorySink) Accept(done, total int, s RunSummary, full *Result) error {
	m.runs = append(m.runs, s)
	if m.Keep {
		m.results = append(m.results, full)
	}
	m.sorted = false
	return nil
}

func (m *MemorySink) Flush() error { return nil }
func (m *MemorySink) Close() error { return nil }

// sort reorders the accumulated runs (and retained results) from
// completion order into expansion order. Indices are unique per sweep, so
// the result is deterministic for any worker count.
func (m *MemorySink) sort() {
	if m.sorted {
		return
	}
	perm := make([]int, len(m.runs))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		return m.runs[perm[a]].Index < m.runs[perm[b]].Index
	})
	runs := make([]RunSummary, len(m.runs))
	for i, p := range perm {
		runs[i] = m.runs[p]
	}
	m.runs = runs
	if m.Keep {
		results := make([]*Result, len(m.results))
		for i, p := range perm {
			results[i] = m.results[p]
		}
		m.results = results
	}
	m.sorted = true
}

// Result assembles the accumulated runs into a SweepResult, byte-for-byte
// the value Sweep.Run has always produced: runs in expansion order, groups
// and the overall gap recomputed from the full run list.
func (m *MemorySink) Result() *SweepResult {
	m.sort()
	res := &SweepResult{Runs: m.runs, Results: m.results}
	res.aggregate()
	return res
}

// RollupSink folds each telemetry-enabled run's snapshot into a
// sweep-wide telemetry rollup. Sums and maxima commute, so the rollup is
// identical for any worker count; runs without a snapshot (telemetry off,
// or aborted before producing one) are skipped.
type RollupSink struct {
	Rollup telemetry.Rollup
}

func (r *RollupSink) Accept(done, total int, s RunSummary, full *Result) error {
	if full != nil {
		r.Rollup.Add(full.Telemetry)
	}
	return nil
}

func (r *RollupSink) Flush() error { return nil }
func (r *RollupSink) Close() error { return nil }

// GroupAgg is one (scenario, perturbation, events, cc, scheduler) cell of
// an AggSink: the online counterpart of GroupStats, summarising the cell
// with streaming accumulators instead of retained samples.
type GroupAgg struct {
	Scenario     string `json:"scenario"`
	Perturbation string `json:"perturbation"`
	Events       string `json:"events,omitempty"`
	CC           string `json:"cc"`
	Scheduler    string `json:"scheduler"`
	// Runs counts completed runs in the cell, Errors failed ones,
	// Converged the runs that reached the optimum band.
	Runs      int `json:"runs"`
	Errors    int `json:"errors,omitempty"`
	Converged int `json:"converged"`
	// Gap, TotalMbps and ConvergedAtS summarise the per-run metrics
	// (ConvergedAtS over converged runs only).
	Gap          stats.Online `json:"gap"`
	TotalMbps    stats.Online `json:"total_mbps"`
	ConvergedAtS stats.Online `json:"converged_at_s"`

	// minIndex is the cell's smallest run index — the deterministic sort
	// key that reproduces first-appearance-in-expansion-order grouping no
	// matter the completion order.
	minIndex int
}

// AggSink folds runs into per-group online aggregates as they complete —
// the flat-memory counterpart of SweepResult.Groups for live monitoring
// of sweeps too large to hold. Means, deviations and extrema match the
// end-of-sweep aggregation numerically (not bit-for-bit: Welford sums in
// completion order); medians need the full sample and come from the
// run-log second pass instead.
type AggSink struct {
	// Runs and Errors count completed and failed runs across the sweep.
	Runs, Errors int
	// Gap aggregates the optimality gap over every completed run.
	Gap stats.Online

	groups map[groupKey]*GroupAgg
	closed bool
}

type groupKey struct{ scenario, pert, events, cc, sched string }

func (a *AggSink) Accept(done, total int, s RunSummary, full *Result) error {
	if a.closed {
		return fmt.Errorf("aggregation sink: %w", ErrSinkClosed)
	}
	if a.groups == nil {
		a.groups = make(map[groupKey]*GroupAgg)
	}
	k := groupKey{s.Scenario, s.Perturbation, s.Events, s.CC, s.Scheduler}
	g, ok := a.groups[k]
	if !ok {
		g = &GroupAgg{Scenario: s.Scenario, Perturbation: s.Perturbation,
			Events: s.Events, CC: s.CC, Scheduler: s.Scheduler, minIndex: s.Index}
		a.groups[k] = g
	}
	if s.Index < g.minIndex {
		g.minIndex = s.Index
	}
	if s.Err != "" {
		a.Errors++
		g.Errors++
		return nil
	}
	a.Runs++
	g.Runs++
	if s.Converged {
		g.Converged++
		g.ConvergedAtS.Add(s.ConvergedAtS)
	}
	g.Gap.Add(s.Gap)
	g.TotalMbps.Add(s.TotalMbps)
	a.Gap.Add(s.Gap)
	return nil
}

func (a *AggSink) Flush() error { return nil }

// Close freezes the aggregate: once closed, further Accepts (and a second
// Close) return ErrSinkClosed, so a snapshot taken after Close — e.g. one
// handed to a fleet-level Merge — cannot drift.
func (a *AggSink) Close() error {
	if a.closed {
		return fmt.Errorf("aggregation sink: %w", ErrSinkClosed)
	}
	a.closed = true
	return nil
}

// Merge folds another sink's aggregate state into a — the fleet
// coordinator's fold across per-shard aggregates. Cells merge by group key
// with online accumulator merging (stats.Online.Merge), so the fold equals
// a single sink having seen every run, up to floating-point association.
// The closed states are independent: merging does not reopen a.
func (a *AggSink) Merge(b *AggSink) {
	a.Runs += b.Runs
	a.Errors += b.Errors
	a.Gap.Merge(b.Gap)
	for k, g := range b.groups {
		if a.groups == nil {
			a.groups = make(map[groupKey]*GroupAgg)
		}
		dst, ok := a.groups[k]
		if !ok {
			cp := *g
			a.groups[k] = &cp
			continue
		}
		if g.minIndex < dst.minIndex {
			dst.minIndex = g.minIndex
		}
		dst.Runs += g.Runs
		dst.Errors += g.Errors
		dst.Converged += g.Converged
		dst.Gap.Merge(g.Gap)
		dst.TotalMbps.Merge(g.TotalMbps)
		dst.ConvergedAtS.Merge(g.ConvergedAtS)
	}
}

// Groups snapshots the cells in first-appearance-in-expansion order (the
// order SweepResult.Groups uses), deterministic for any worker count.
func (a *AggSink) Groups() []GroupAgg {
	out := make([]GroupAgg, 0, len(a.groups))
	for _, g := range a.groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].minIndex < out[j].minIndex })
	return out
}

// hookSink adapts the deprecated Sweep.OnResult/OnFailure hooks onto the
// sink path, preserving their documented contract: serialised, failure
// callback before the result callback, monotone done counts.
type hookSink struct {
	onResult  func(done, total int, r RunSummary)
	onFailure func(r RunSummary, res *Result)
}

func (h *hookSink) Accept(done, total int, s RunSummary, full *Result) error {
	if h.onFailure != nil && s.Err != "" {
		h.onFailure(s, full)
	}
	if h.onResult != nil {
		h.onResult(done, total, s)
	}
	return nil
}

func (h *hookSink) Flush() error { return nil }
func (h *hookSink) Close() error { return nil }
