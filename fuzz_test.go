package mptcpsim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzScenarioRoundTrip asserts the scenario format's contract on
// arbitrary input: parsing never panics, and any input that builds
// re-emits to a scenario that builds to the same export — parse → build →
// re-emit is a fixpoint.
func FuzzScenarioRoundTrip(f *testing.F) {
	seed := func(sf *ScenarioFile) {
		js, err := json.Marshal(sf)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(js)
	}
	seed(PaperScenario())
	dynamic := PaperScenario()
	dynamic.Events = []ScenarioEvent{
		{AtMs: 500, Type: EventLossBurst, A: "s", B: "v1", Loss: 0.3, DurationMs: 100},
		{AtMs: 1000, Type: EventSetRate, A: "v3", B: "v4", Mbps: 20},
		{AtMs: 2000, Type: EventLinkDown, A: "s", B: "v1"},
		{AtMs: 3000, Type: EventLinkUp, A: "s", B: "v1"},
	}
	dynamic.Links[0].Loss = 0.01
	dynamic.Links[1].QueueBytes = 32768
	dynamic.Paths[0].Name = "upper"
	seed(dynamic)
	f.Add([]byte(`{"links":[{"a":"s","b":"d","mbps":1e308,"delay_ms":1}],` +
		`"endpoints":{"src":"s","dst":"d"},"paths":[{"nodes":["s","d"]}]}`))
	f.Add([]byte(`{"links":[{"a":"s","b":"d","mbps":10,"delay_ms":1}],` +
		`"endpoints":{"src":"s","dst":"d"},"paths":[{"nodes":["s","d"]}],` +
		`"events":[{"at_ms":1e300,"type":"link_down","a":"s","b":"d"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := LoadScenario(bytes.NewReader(data))
		if err != nil {
			return
		}
		nw, err := sf.Build()
		if err != nil {
			return
		}
		out1, err := nw.Scenario()
		if err != nil {
			t.Fatalf("built network failed to export: %v", err)
		}
		js1, err := json.Marshal(out1)
		if err != nil {
			t.Fatalf("marshal export: %v", err)
		}
		nw2, err := out1.Build()
		if err != nil {
			t.Fatalf("re-emitted scenario failed to build: %v\nexport: %s", err, js1)
		}
		out2, err := nw2.Scenario()
		if err != nil {
			t.Fatalf("second export failed: %v", err)
		}
		js2, err := json.Marshal(out2)
		if err != nil {
			t.Fatalf("marshal second export: %v", err)
		}
		if !bytes.Equal(js1, js2) {
			t.Fatalf("parse→build→re-emit is not a fixpoint:\nfirst:  %s\nsecond: %s", js1, js2)
		}
	})
}
