package mptcpsim

// One benchmark per table/figure of the paper, plus the ablations from
// DESIGN.md. Experiment benchmarks run the full packet-level simulation
// per iteration (seed = iteration index) and report the reproduction's
// headline numbers as custom metrics:
//
//	mbps      mean total throughput over the run
//	gap%      optimality gap versus the LP total (90 Mbps)
//	conv%     fraction of iterations that reached the optimum band
//	conv_s    mean convergence time among converged iterations
//
// Absolute ns/op numbers measure simulator speed, not protocol quality.

import (
	"testing"
	"time"
)

// benchRun executes RunPaper once per iteration with rotating seeds and
// reports the aggregate reproduction metrics.
func benchRun(b *testing.B, opts Options) {
	b.Helper()
	var total, gap, convTime float64
	conv := 0
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		res, err := RunPaper(opts)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Summary.TotalMean
		gap += res.Summary.Gap
		if res.Summary.Converged {
			conv++
			convTime += res.Summary.ConvergedAt.Seconds()
		}
	}
	n := float64(b.N)
	b.ReportMetric(total/n, "mbps")
	b.ReportMetric(gap/n*100, "gap%")
	b.ReportMetric(float64(conv)/n*100, "conv%")
	if conv > 0 {
		b.ReportMetric(convTime/float64(conv), "conv_s")
	}
}

// BenchmarkFig1cLP regenerates the Fig. 1c optimisation: LP optimum,
// greedy trap, max-min and proportional fairness (reported in Mbps).
func BenchmarkFig1cLP(b *testing.B) {
	var lpTot, greedy, maxmin, propfair float64
	for i := 0; i < b.N; i++ {
		res, err := RunPaper(Options{Duration: 10 * time.Millisecond, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		lpTot = res.Optimum.Total
		greedy = total(res.Greedy)
		maxmin = total(res.MaxMin)
		propfair = total(res.PropFair)
	}
	b.ReportMetric(lpTot, "lp_mbps")
	b.ReportMetric(greedy, "greedy_mbps")
	b.ReportMetric(maxmin, "maxmin_mbps")
	b.ReportMetric(propfair, "propfair_mbps")
}

// BenchmarkFig2aCubic regenerates Fig. 2a: MPTCP-CUBIC, 100 ms bins, 4 s.
func BenchmarkFig2aCubic(b *testing.B) {
	benchRun(b, Options{CC: "cubic"})
}

// BenchmarkFig2bOlia regenerates Fig. 2b: MPTCP-OLIA, 100 ms bins, 4 s.
func BenchmarkFig2bOlia(b *testing.B) {
	benchRun(b, Options{CC: "olia"})
}

// BenchmarkFig2cFine regenerates Fig. 2c: the early sawtooth at 10 ms bins.
func BenchmarkFig2cFine(b *testing.B) {
	benchRun(b, Options{CC: "cubic", Duration: 500 * time.Millisecond,
		SampleInterval: 10 * time.Millisecond})
}

// BenchmarkTableSummary regenerates the §3 results table: one
// sub-benchmark per congestion-control algorithm at the paper's horizon,
// plus the long horizons on which CUBIC always converges and OLIA
// converges slowly.
func BenchmarkTableSummary(b *testing.B) {
	rows := []struct {
		name string
		opts Options
	}{
		{"cubic/4s", Options{CC: "cubic"}},
		{"cubic/12s", Options{CC: "cubic", Duration: 12 * time.Second}},
		{"reno/4s", Options{CC: "reno"}},
		{"lia/4s", Options{CC: "lia"}},
		{"lia/25s", Options{CC: "lia", Duration: 25 * time.Second}},
		{"olia/4s", Options{CC: "olia"}},
		{"olia/25s", Options{CC: "olia", Duration: 25 * time.Second}},
		{"balia/4s", Options{CC: "balia"}},
		{"wvegas/4s", Options{CC: "wvegas"}},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) { benchRun(b, row.opts) })
	}
}

// BenchmarkOliaDefaultPath regenerates E7: OLIA's sensitivity to which
// path hosts the default subflow (paper: reached the optimum only when
// Path 2 was the default).
func BenchmarkOliaDefaultPath(b *testing.B) {
	for _, order := range [][]int{{2, 1, 3}, {1, 2, 3}, {3, 1, 2}} {
		name := map[int]string{1: "default-path1", 2: "default-path2", 3: "default-path3"}[order[0]]
		b.Run(name, func(b *testing.B) {
			benchRun(b, Options{CC: "olia", Duration: 25 * time.Second, SubflowPaths: order})
		})
	}
}

// BenchmarkAblationBuffers is A1: queue capacity controls drop frequency,
// the step size of the paper's "shake-down" gradient search.
func BenchmarkAblationBuffers(b *testing.B) {
	for _, qs := range []float64{0.25, 0.5, 1, 2} {
		b.Run(map[float64]string{0.25: "q0.25", 0.5: "q0.5", 1: "q1", 2: "q2"}[qs], func(b *testing.B) {
			benchRun(b, Options{CC: "cubic", QueueScale: qs})
		})
	}
}

// BenchmarkAblationScheduler is A3: the segment scheduler barely matters
// for bulk transfer (windows, not scheduling, bound each path), except
// that redundant mode burns capacity on duplicates.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, sched := range []string{"minrtt", "roundrobin", "redundant"} {
		b.Run(sched, func(b *testing.B) {
			benchRun(b, Options{CC: "cubic", Scheduler: sched})
		})
	}
}

// BenchmarkAblationSACK contrasts SACK scoreboard recovery with
// NewReno-only loss repair (the paper's kernel had SACK; without it the
// slow-start overshoot cripples the first seconds).
func BenchmarkAblationSACK(b *testing.B) {
	b.Run("sack", func(b *testing.B) { benchRun(b, Options{CC: "cubic"}) })
	b.Run("nosack", func(b *testing.B) { benchRun(b, Options{CC: "cubic", DisableSACK: true}) })
}

// BenchmarkAblationSharedLink is A2: two subflows over one shared
// bottleneck. Coupled LIA should take about one TCP's share (RFC 6356
// design goal); uncoupled CUBIC takes nearly all of it.
func BenchmarkAblationSharedLink(b *testing.B) {
	build := func() *Network {
		nw := NewNetwork()
		nw.AddLink("a", "m", 40, 5*time.Millisecond)
		nw.AddLink("m", "b", 40, 5*time.Millisecond)
		if err := nw.Endpoints("a", "b"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := nw.AddPath("a", "m", "b"); err != nil {
				b.Fatal(err)
			}
		}
		return nw
	}
	for _, cc := range []string{"lia", "olia", "cubic"} {
		b.Run(cc, func(b *testing.B) {
			var tot float64
			for i := 0; i < b.N; i++ {
				res, err := Run(build(), Options{CC: cc, Seed: int64(i + 1), Duration: 5 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				tot += res.Summary.TotalMean
			}
			b.ReportMetric(tot/float64(b.N), "mbps")
		})
	}
}

// BenchmarkSimulatorSpeed measures raw engine throughput: simulated
// packet-events per wall second for the standard 4 s CUBIC run.
func BenchmarkSimulatorSpeed(b *testing.B) {
	var pkts uint64
	for i := 0; i < b.N; i++ {
		res, err := RunPaper(Options{CC: "cubic", Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		pkts += res.Packets
	}
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/run")
}

// BenchmarkFairnessSharedBottleneck measures the RFC 6356 "do no harm"
// property: MPTCP (Paths 2+1, both crossing the 40 Mbps s-v1 link)
// competing with one plain CUBIC TCP on Path 2. Reported metric: the
// MPTCP/TCP rate ratio — coupled algorithms should sit near or below 1,
// uncoupled ones above it.
func BenchmarkFairnessSharedBottleneck(b *testing.B) {
	for _, cc := range []string{"lia", "olia", "wvegas", "cubic"} {
		b.Run(cc, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := RunPaper(Options{
					CC:           cc,
					Seed:         int64(i + 1),
					Duration:     10 * time.Second,
					SubflowPaths: []int{2, 1},
					CrossTCP:     []int{2},
				})
				if err != nil {
					b.Fatal(err)
				}
				m := res.Paths[0].Mean(2*time.Second, 10*time.Second) +
					res.Paths[1].Mean(2*time.Second, 10*time.Second)
				c := res.Cross[0].Mean(2*time.Second, 10*time.Second)
				if c > 0 {
					ratio += m / c
				}
			}
			b.ReportMetric(ratio/float64(b.N), "mptcp/tcp")
		})
	}
}

// BenchmarkSweep measures the batch engine end to end: a 12-run grid
// (2 CCs x 2 orderings x 3 seeds) of 1 s experiments per iteration,
// reporting aggregate sweep throughput. This is the go-test twin of
// cmd/benchsweep, which CI runs to emit BENCH_sweep.json.
func BenchmarkSweep(b *testing.B) {
	grid := &Grid{
		CCs:        []string{"cubic", "olia"},
		Orders:     [][]int{{2, 1, 3}, {1, 2, 3}},
		Seeds:      []int64{1, 2, 3},
		DurationMs: 1000,
	}
	b.ReportAllocs()
	var runs int
	for i := 0; i < b.N; i++ {
		res, err := (&Sweep{}).Run(grid)
		if err != nil {
			b.Fatal(err)
		}
		if res.Errs() > 0 {
			b.Fatalf("%d sweep runs failed", res.Errs())
		}
		runs += len(res.Runs)
	}
	b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkSweepDynamic is the same grid with a LinkDown/LinkUp event
// timeline on every cell: the piecewise-LP machinery (per-epoch cached
// solves, epoch summaries) rides on every run, so a regression in the
// dynamics path shows up here first.
func BenchmarkSweepDynamic(b *testing.B) {
	grid := &Grid{
		CCs:        []string{"cubic", "olia"},
		Orders:     [][]int{{2, 1, 3}, {1, 2, 3}},
		Seeds:      []int64{1, 2, 3},
		DurationMs: 1000,
		Events: []EventSet{
			{Name: "outage", Events: []ScenarioEvent{
				{AtMs: 400, Type: EventLinkDown, A: "s", B: "v1"},
				{AtMs: 700, Type: EventLinkUp, A: "s", B: "v1"},
			}},
		},
	}
	b.ReportAllocs()
	var runs int
	for i := 0; i < b.N; i++ {
		res, err := (&Sweep{}).Run(grid)
		if err != nil {
			b.Fatal(err)
		}
		if res.Errs() > 0 {
			b.Fatalf("%d sweep runs failed", res.Errs())
		}
		runs += len(res.Runs)
	}
	b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
}
